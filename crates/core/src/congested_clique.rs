//! Sparsity-aware `K_p` listing in the CONGESTED CLIQUE model (Theorem 1.3).
//!
//! The algorithm is the in-cluster listing of Section 2.4.3 executed on the
//! whole clique: partition the vertex set into `≈ n^{1/p}` parts, assign every
//! node a `p`-tuple of parts through the radix representation of its
//! identifier, deliver every edge to the nodes whose tuple contains both
//! endpoint parts, and let each node list what it sees. The round complexity
//! is `~Θ(1 + m / n^{1+2/p})`: every node sends and receives
//! `O(p² m / n^{2/p})` messages and the clique moves `n − 1` messages per node
//! per round (Lenzen routing).
//!
//! The algorithm is reached through the [`Engine`](crate::Engine) (algorithm
//! `congested-clique`), which streams the listed cliques into a
//! [`CliqueSink`] and reports the send/receive loads in
//! [`RunReport::congested_clique`](crate::RunReport::congested_clique). The
//! pre-Engine free function (`congested_clique_list`) survived PR 2 as a
//! deprecated wrapper and was removed in the following release.

use crate::config::ListingConfig;
use crate::parts::TupleAssignment;
use crate::report::CongestedCliqueStats;
use crate::result::{phase, Rounds};
use crate::sink::CliqueSink;
use congest::CongestedClique;
use graphcore::partition::VertexPartition;
use graphcore::{Graph, Orientation};

/// Runs the CONGESTED CLIQUE algorithm, emitting every `K_p` of `graph` into
/// `sink` exactly once, and returns the measured rounds, the load statistics,
/// and the worker fan-out the local enumeration actually reached.
///
/// The caller is responsible for validating `config` (`p ≥ 3`); the
/// [`Engine`](crate::Engine) builder does this. Graphs with fewer than two
/// vertices have no edges and cost nothing.
pub(crate) fn run_streaming(
    graph: &Graph,
    config: &ListingConfig,
    sink: &mut dyn CliqueSink,
) -> (Rounds, CongestedCliqueStats, usize) {
    let n = graph.num_vertices();
    let p = config.p;
    let m = graph.num_edges();
    let mut rounds = Rounds::new();
    let mut stats = CongestedCliqueStats {
        predicted_rounds: if n >= 2 {
            1.0 + m as f64 / (n as f64).powf(1.0 + 2.0 / p as f64)
        } else {
            0.0
        },
        ..Default::default()
    };

    if m == 0 || n < 2 {
        return (rounds, stats, 1);
    }
    let clique = CongestedClique::new(n);

    // Orientation with out-degree O(arboricity): each node is responsible for
    // its outgoing edges.
    let orientation = Orientation::from_degeneracy(graph);

    // Partition into ~n^{1/p} parts; announcing one part per owned vertex is a
    // single round (every node broadcasts its own part).
    let assignment = TupleAssignment::new(n, p);
    let partition = VertexPartition::random(n, assignment.num_parts, config.seed);
    rounds.add(phase::PARTITION_BROADCAST, 1);

    // Edge exchange loads. The pair counts live in a flat upper-triangular
    // [`PairTable`] over the `≈ n^{1/p}` parts and the per-tuple pair dedup
    // is a sorted scratch vector — no hash container anywhere on this path,
    // so every intermediate iteration order is structural (the same flat
    // layout the in-cluster listing uses; see `expander::ids`).
    let words = config.words_per_edge;
    let mut pair_counts = expander::PairTable::new(assignment.num_parts);
    let mut send_load = vec![0u64; n];
    for (u, v) in graph.edges() {
        let (a, b) = (partition.part_of(u), partition.part_of(v));
        pair_counts.add(a, b, 1);
        let source = orientation.source_of(u, v).unwrap_or(u);
        send_load[source as usize] += assignment.owners_needing(a.min(b), a.max(b)) * words;
    }
    let mut max_recv = 0u64;
    let mut tuple_pairs: Vec<(u32, u32)> = Vec::new();
    for rank in 0..n {
        let mut load = 0u64;
        for t in assignment.tuples_of(rank) {
            assignment.distinct_pairs_into(t, &mut tuple_pairs);
            for &(a, b) in &tuple_pairs {
                load += pair_counts.get(a, b) * words;
            }
        }
        max_recv = max_recv.max(load);
    }
    stats.max_send = send_load.iter().copied().max().unwrap_or(0);
    stats.max_recv = max_recv;
    rounds.add(
        phase::PART_EXCHANGE,
        clique.routing_rounds(stats.max_send, stats.max_recv),
    );

    // Every tuple is owned by some node, so every K_p (whose vertices fall in
    // some multiset of parts) is listed by the owner of the corresponding
    // tuple: the union of the node outputs is the full list, and the exact
    // enumeration emits each instance once, in deterministic order. A
    // saturated sink aborts the enumeration (not the charged rounds). The
    // node-local listings are independent, so this is a dense local
    // enumeration the engine may shard across threads — output is identical
    // at any `Parallelism` setting.
    let threads_used = crate::local::stream_cliques(graph, config, sink);
    (rounds, stats, threads_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::report::RunReport;
    use crate::verify::verify_cliques;
    use graphcore::gen;

    fn run(graph: &Graph, p: usize, seed: u64) -> (RunReport, Vec<graphcore::Clique>) {
        Engine::builder()
            .p(p)
            .algorithm("congested-clique")
            .seed(seed)
            .build()
            .expect("valid engine")
            .collect(graph)
    }

    #[test]
    fn lists_everything() {
        let g = gen::erdos_renyi(80, 0.2, 3);
        for p in [3, 4, 5] {
            let (_, cliques) = run(&g, p, 1);
            verify_cliques(&g, p, &cliques).expect("complete listing");
        }
    }

    #[test]
    fn rounds_grow_with_density() {
        let n = 200;
        let (sparse, _) = run(&gen::erdos_renyi(n, 0.02, 7), 4, 1);
        let (dense, _) = run(&gen::erdos_renyi(n, 0.4, 7), 4, 1);
        assert!(dense.total_rounds() >= sparse.total_rounds());
        let sparse_stats = sparse.congested_clique.unwrap();
        let dense_stats = dense.congested_clique.unwrap();
        assert!(dense_stats.max_recv > sparse_stats.max_recv);
        assert!(dense_stats.predicted_rounds > sparse_stats.predicted_rounds);
    }

    #[test]
    fn sparse_graphs_take_constant_rounds() {
        // m = O(n): Theorem 1.3 predicts O~(1) rounds, i.e. the round count
        // must not grow when n doubles at constant average degree (the p²
        // polylog factors hidden by O~ keep the absolute value above 1).
        let (small, _) = run(&gen::random_regular(200, 4, 5), 4, 2);
        let (large, _) = run(&gen::random_regular(400, 4, 5), 4, 2);
        assert!(
            large.total_rounds() <= small.total_rounds() + 2,
            "rounds grew from {} to {}",
            small.total_rounds(),
            large.total_rounds()
        );
        assert!(large.congested_clique.unwrap().predicted_rounds < 2.0);
    }

    #[test]
    fn empty_graph_is_free() {
        let (report, cliques) = run(&Graph::new(10), 4, 0);
        assert!(cliques.is_empty());
        assert_eq!(report.total_rounds(), 0);
        // Degenerate clique sizes are handled without panicking.
        let (report, cliques) = run(&Graph::new(1), 4, 0);
        assert!(cliques.is_empty());
        assert_eq!(report.total_rounds(), 0);
    }

    #[test]
    fn small_p_rejected_by_the_builder() {
        assert!(Engine::builder()
            .p(2)
            .algorithm("congested-clique")
            .build()
            .is_err());
    }
}
