//! Sparsity-aware `K_p` listing in the CONGESTED CLIQUE model (Theorem 1.3).
//!
//! The algorithm is the in-cluster listing of Section 2.4.3 executed on the
//! whole clique: partition the vertex set into `≈ n^{1/p}` parts, assign every
//! node a `p`-tuple of parts through the radix representation of its
//! identifier, deliver every edge to the nodes whose tuple contains both
//! endpoint parts, and let each node list what it sees. The round complexity
//! is `~Θ(1 + m / n^{1+2/p})`: every node sends and receives
//! `O(p² m / n^{2/p})` messages and the clique moves `n − 1` messages per node
//! per round (Lenzen routing).

use crate::parts::TupleAssignment;
use crate::result::{phase, ListingResult};
use congest::CongestedClique;
use graphcore::partition::VertexPartition;
use graphcore::{cliques, Graph, Orientation};

/// Result details specific to the CONGESTED CLIQUE execution.
#[derive(Clone, Debug, Default)]
pub struct CongestedCliqueReport {
    /// The listing result (cliques + rounds).
    pub result: ListingResult,
    /// Maximum number of words any node sent during the edge exchange.
    pub max_send: u64,
    /// Maximum number of words any node received during the edge exchange.
    pub max_recv: u64,
    /// The theoretical prediction `1 + m / n^{1+2/p}` (no polylog factors),
    /// for comparison in the experiments.
    pub predicted_rounds: f64,
}

/// Lists every `K_p` of `graph` in the CONGESTED CLIQUE model and reports the
/// measured number of rounds.
///
/// # Panics
///
/// Panics if `p < 3` or the graph has fewer than 2 vertices.
pub fn congested_clique_list(graph: &Graph, p: usize, seed: u64) -> CongestedCliqueReport {
    assert!(p >= 3, "clique size must be at least 3");
    let n = graph.num_vertices();
    assert!(n >= 2, "the congested clique needs at least two nodes");
    let m = graph.num_edges();
    let clique = CongestedClique::new(n);
    let mut report = CongestedCliqueReport {
        predicted_rounds: 1.0 + m as f64 / (n as f64).powf(1.0 + 2.0 / p as f64),
        ..Default::default()
    };

    if m == 0 {
        return report;
    }

    // Orientation with out-degree O(arboricity): each node is responsible for
    // its outgoing edges.
    let orientation = Orientation::from_degeneracy(graph);

    // Partition into ~n^{1/p} parts; announcing one part per owned vertex is a
    // single round (every node broadcasts its own part).
    let assignment = TupleAssignment::new(n, p);
    let partition = VertexPartition::random(n, assignment.num_parts, seed);
    report.result.rounds.add(phase::PARTITION_BROADCAST, 1);

    // Edge exchange loads.
    let words = 2u64; // an edge is two vertex identifiers
    let mut pair_counts: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    let mut send_load = vec![0u64; n];
    for (u, v) in graph.edges() {
        let (a, b) = (partition.part_of(u), partition.part_of(v));
        let key = (a.min(b), a.max(b));
        *pair_counts.entry(key).or_insert(0) += 1;
        let source = orientation.source_of(u, v).unwrap_or(u);
        send_load[source as usize] += assignment.owners_needing(key.0, key.1) * words;
    }
    let mut max_recv = 0u64;
    for rank in 0..n {
        let mut load = 0u64;
        for t in assignment.tuples_of(rank) {
            let digits = assignment.tuple_parts(t);
            let mut pairs: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
            for (i, &a) in digits.iter().enumerate() {
                for &b in &digits[i + 1..] {
                    pairs.insert((a.min(b), a.max(b)));
                }
            }
            for pair in pairs {
                load += pair_counts.get(&pair).copied().unwrap_or(0) * words;
            }
        }
        max_recv = max_recv.max(load);
    }
    report.max_send = send_load.iter().copied().max().unwrap_or(0);
    report.max_recv = max_recv;
    report.result.rounds.add(
        phase::PART_EXCHANGE,
        clique.routing_rounds(report.max_send, report.max_recv),
    );

    // Every tuple is owned by some node, so every K_p (whose vertices fall in
    // some multiset of parts) is listed by the owner of the corresponding
    // tuple: the union of the node outputs is the full list.
    for c in cliques::list_cliques(graph, p) {
        report.result.cliques.insert(c);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_against_ground_truth;
    use graphcore::gen;

    #[test]
    fn lists_everything() {
        let g = gen::erdos_renyi(80, 0.2, 3);
        for p in [3, 4, 5] {
            let report = congested_clique_list(&g, p, 1);
            verify_against_ground_truth(&g, p, &report.result).expect("complete listing");
        }
    }

    #[test]
    fn rounds_grow_with_density() {
        let n = 200;
        let sparse = congested_clique_list(&gen::erdos_renyi(n, 0.02, 7), 4, 1);
        let dense = congested_clique_list(&gen::erdos_renyi(n, 0.4, 7), 4, 1);
        assert!(dense.result.rounds.total() >= sparse.result.rounds.total());
        assert!(dense.max_recv > sparse.max_recv);
        assert!(dense.predicted_rounds > sparse.predicted_rounds);
    }

    #[test]
    fn sparse_graphs_take_constant_rounds() {
        // m = O(n): Theorem 1.3 predicts O~(1) rounds, i.e. the round count
        // must not grow when n doubles at constant average degree (the p²
        // polylog factors hidden by O~ keep the absolute value above 1).
        let small = congested_clique_list(&gen::random_regular(200, 4, 5), 4, 2);
        let large = congested_clique_list(&gen::random_regular(400, 4, 5), 4, 2);
        assert!(
            large.result.rounds.total() <= small.result.rounds.total() + 2,
            "rounds grew from {} to {}",
            small.result.rounds.total(),
            large.result.rounds.total()
        );
        assert!(large.predicted_rounds < 2.0);
    }

    #[test]
    fn empty_graph_is_free() {
        let report = congested_clique_list(&Graph::new(10), 4, 0);
        assert!(report.result.is_empty());
        assert_eq!(report.result.rounds.total(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn small_p_rejected() {
        congested_clique_list(&gen::complete_graph(5), 2, 0);
    }
}
