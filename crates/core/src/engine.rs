//! The unified entry point for every listing algorithm.
//!
//! An [`Engine`] pairs one [`ListingAlgorithm`] with a validated
//! [`ListingConfig`] and streams the listed cliques of a run into any
//! [`CliqueSink`]:
//!
//! ```
//! use cliquelist::{CollectSink, Engine};
//! use graphcore::gen;
//!
//! let graph = gen::erdos_renyi(60, 0.3, 7);
//! let engine = Engine::builder().p(4).algorithm("general").seed(7).build()?;
//! let mut sink = CollectSink::new();
//! let report = engine.run(&graph, &mut sink);
//! assert_eq!(report.sink.emitted as usize, sink.len());
//! # Ok::<(), cliquelist::ConfigError>(())
//! ```
//!
//! The five built-in algorithms (the paper's three theorems plus the two
//! baselines) are discoverable through [`algorithms`] and selectable by name
//! through [`EngineBuilder::algorithm`]; external algorithms implement
//! [`ListingAlgorithm`] and plug in through [`EngineBuilder::custom`]. See
//! `DESIGN.md` §6 for the trait boundaries.

use crate::baselines::{eden_k4, naive};
use crate::config::{ExchangeMode, ListingConfig, Parallelism, Resilience, Variant};
use crate::congested_clique;
use crate::driver;
use crate::error::ConfigError;
use crate::report::{KernelSummary, Model, ParallelismSummary, RunOutcome, RunReport, SinkSummary};
use crate::result::phase;
use crate::sink::{CliqueSink, CollectSink, CountSink, Counted, CrashFilter};
use congest::ChargePolicy;
use expander::DecompositionConfig;
use graphcore::{Clique, Graph, KernelStrategy};
use std::fmt;

/// Registry names of the built-in algorithms.
pub mod names {
    /// The general `K_p` CONGEST algorithm (Theorem 1.1).
    pub const GENERAL: &str = "general";
    /// The specialised `K_4` CONGEST algorithm (Theorem 1.2).
    pub const FAST_K4: &str = "fast-k4";
    /// The sparsity-aware CONGESTED CLIQUE algorithm (Theorem 1.3).
    pub const CONGESTED_CLIQUE: &str = "congested-clique";
    /// The trivial `Θ(Δ)` broadcast baseline.
    pub const NAIVE_BROADCAST: &str = "naive-broadcast";
    /// The Eden-et-al-style `K_4` baseline (DISC 2019 stand-in).
    pub const EDEN_K4: &str = "eden-k4";
}

/// Whether an algorithm's local enumeration can be sharded across worker
/// threads (the [`Parallelism`] knob of the builder).
///
/// This is *capability* metadata: it depends only on how the algorithm
/// computes, never on the requested thread count, so reports derived from it
/// stay byte-identical across parallelism settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParallelSupport {
    /// The algorithm's listing work is one dense local enumeration over an
    /// aggregate graph: its degeneracy-DAG roots shard across worker threads
    /// with byte-identical output (see `DESIGN.md` §8).
    Sharded,
    /// The algorithm is pinned to sequential execution; the payload says why
    /// and is recorded as the sequential-fallback reason in
    /// [`RunReport::parallelism`](crate::RunReport).
    Sequential(&'static str),
}

/// Static capabilities of a listing algorithm: which clique sizes it
/// supports, which communication model its rounds are measured in, and
/// whether its local enumeration can run sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlgorithmInfo {
    /// Registry name (stable, lower-case, kebab-case).
    pub name: &'static str,
    /// Communication model.
    pub model: Model,
    /// Smallest supported clique size.
    pub min_p: usize,
    /// Largest supported clique size (`None` = unbounded).
    pub max_p: Option<usize>,
    /// Whether the local enumeration honours the [`Parallelism`] knob.
    pub parallel: ParallelSupport,
    /// One-line human description.
    pub summary: &'static str,
}

impl AlgorithmInfo {
    /// Whether the algorithm supports listing `K_p`.
    pub fn supports_p(&self, p: usize) -> bool {
        p >= self.min_p && self.max_p.is_none_or(|max| p <= max)
    }
}

/// A clique-listing algorithm runnable through an [`Engine`].
///
/// Implementations receive a **validated** configuration (the builder rejects
/// anything violating [`ListingConfig::validate`] and the algorithm's
/// supported clique-size range) and must uphold the sink contract: each
/// distinct clique of the run is passed to [`CliqueSink::accept`] exactly
/// once, in canonical form, in a deterministic order.
pub trait ListingAlgorithm: Sync {
    /// Static capabilities (name, model, supported clique sizes).
    fn info(&self) -> AlgorithmInfo;

    /// Adapts a validated base configuration to this algorithm (e.g. the
    /// fast-`K_4` algorithm pins `variant = FastK4`). Called once by the
    /// builder, after user overrides and before final validation.
    fn prepare(&self, config: ListingConfig) -> ListingConfig {
        config
    }

    /// Runs the algorithm on `graph`, emitting every listed clique into
    /// `sink` and returning the measured cost. Must not panic on degenerate
    /// graphs (empty, fewer vertices than `p`).
    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport;
}

/// Theorem 1.1: the general `K_p` CONGEST algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct GeneralListing;

impl ListingAlgorithm for GeneralListing {
    fn info(&self) -> AlgorithmInfo {
        AlgorithmInfo {
            name: names::GENERAL,
            model: Model::Congest,
            min_p: 3,
            max_p: None,
            parallel: ParallelSupport::Sharded,
            summary: "general K_p listing in ~O(n^{3/4} + n^{p/(p+2)}) CONGEST rounds",
        }
    }

    fn prepare(&self, mut config: ListingConfig) -> ListingConfig {
        config.variant = Variant::General;
        config
    }

    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport {
        let mut report = RunReport::new(names::GENERAL, Model::Congest, config.p);
        (
            report.rounds,
            report.diagnostics,
            report.parallelism.threads_used,
        ) = driver::run_congest(graph, config, sink);
        report
    }
}

/// Theorem 1.2: the specialised `K_4` CONGEST algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastK4Listing;

impl ListingAlgorithm for FastK4Listing {
    fn info(&self) -> AlgorithmInfo {
        AlgorithmInfo {
            name: names::FAST_K4,
            model: Model::Congest,
            min_p: 4,
            max_p: Some(4),
            parallel: ParallelSupport::Sharded,
            summary: "specialised K_4 listing in ~O(n^{2/3}) CONGEST rounds",
        }
    }

    fn prepare(&self, mut config: ListingConfig) -> ListingConfig {
        config.variant = Variant::FastK4;
        config
    }

    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport {
        let mut report = RunReport::new(names::FAST_K4, Model::Congest, config.p);
        (
            report.rounds,
            report.diagnostics,
            report.parallelism.threads_used,
        ) = driver::run_congest(graph, config, sink);
        report
    }
}

/// Theorem 1.3: the sparsity-aware CONGESTED CLIQUE algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct CongestedCliqueListing;

impl ListingAlgorithm for CongestedCliqueListing {
    fn info(&self) -> AlgorithmInfo {
        AlgorithmInfo {
            name: names::CONGESTED_CLIQUE,
            model: Model::CongestedClique,
            min_p: 3,
            max_p: None,
            parallel: ParallelSupport::Sharded,
            summary: "sparsity-aware K_p listing in ~Θ(1 + m/n^{1+2/p}) CONGESTED CLIQUE rounds",
        }
    }

    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport {
        let mut report = RunReport::new(names::CONGESTED_CLIQUE, Model::CongestedClique, config.p);
        let (rounds, stats, threads_used) = congested_clique::run_streaming(graph, config, sink);
        report.rounds = rounds;
        report.congested_clique = Some(stats);
        report.parallelism.threads_used = threads_used;
        report
    }
}

/// The trivial `Θ(Δ)` broadcast baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaiveBroadcastListing;

impl ListingAlgorithm for NaiveBroadcastListing {
    fn info(&self) -> AlgorithmInfo {
        AlgorithmInfo {
            name: names::NAIVE_BROADCAST,
            model: Model::Congest,
            min_p: 3,
            max_p: None,
            parallel: ParallelSupport::Sharded,
            summary: "naive neighbourhood broadcast in Θ(Δ) CONGEST rounds",
        }
    }

    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport {
        let mut report = RunReport::new(names::NAIVE_BROADCAST, Model::Congest, config.p);
        (report.rounds, report.parallelism.threads_used) =
            naive::run_streaming(graph, config, sink);
        report
    }
}

/// The Eden-et-al-style `K_4` baseline (single decomposition pass, dense
/// exchange, naive finish).
#[derive(Clone, Copy, Debug, Default)]
pub struct EdenK4Listing;

impl ListingAlgorithm for EdenK4Listing {
    fn info(&self) -> AlgorithmInfo {
        AlgorithmInfo {
            name: names::EDEN_K4,
            model: Model::Congest,
            min_p: 4,
            max_p: Some(4),
            parallel: ParallelSupport::Sharded,
            summary: "Eden-et-al-style K_4 baseline in O(n^{5/6+o(1)}) CONGEST rounds",
        }
    }

    fn prepare(&self, mut config: ListingConfig) -> ListingConfig {
        // The baseline deliberately lacks the paper's two improvements: it
        // runs a single pass (no arboricity iteration) with the generic,
        // non-sparsity-aware exchange.
        config.variant = Variant::FastK4;
        config.exchange_mode = ExchangeMode::DenseAssumption;
        config.max_arb_iterations = config.max_arb_iterations.min(4);
        config
    }

    fn run(&self, graph: &Graph, config: &ListingConfig, sink: &mut dyn CliqueSink) -> RunReport {
        let mut report = RunReport::new(names::EDEN_K4, Model::Congest, config.p);
        (
            report.rounds,
            report.diagnostics,
            report.parallelism.threads_used,
        ) = eden_k4::run_streaming(graph, config, sink);
        report
    }
}

/// The built-in algorithm registry, in stable order.
static REGISTRY: &[&dyn ListingAlgorithm] = &[
    &GeneralListing,
    &FastK4Listing,
    &CongestedCliqueListing,
    &NaiveBroadcastListing,
    &EdenK4Listing,
];

/// Iterates over every registered algorithm (the paper's three theorems plus
/// the two baselines), in stable order.
pub fn algorithms() -> impl Iterator<Item = &'static dyn ListingAlgorithm> {
    REGISTRY.iter().copied()
}

/// Looks an algorithm up by its registry name (see [`names`]).
pub fn algorithm_named(name: &str) -> Option<&'static dyn ListingAlgorithm> {
    algorithms().find(|a| a.info().name == name)
}

enum AlgorithmHandle {
    Builtin(&'static dyn ListingAlgorithm),
    Custom(Box<dyn ListingAlgorithm>),
}

impl AlgorithmHandle {
    fn get(&self) -> &dyn ListingAlgorithm {
        match self {
            AlgorithmHandle::Builtin(a) => *a,
            AlgorithmHandle::Custom(a) => a.as_ref(),
        }
    }
}

/// A validated pairing of one [`ListingAlgorithm`] with a [`ListingConfig`],
/// ready to run on any number of graphs.
pub struct Engine {
    algorithm: AlgorithmHandle,
    config: ListingConfig,
    resilience: Resilience,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("algorithm", &self.algorithm.get().info().name)
            .field("config", &self.config)
            .finish()
    }
}

impl Engine {
    /// Starts building an engine. `p` has no default and must be set.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The algorithm's static capabilities.
    pub fn algorithm_info(&self) -> AlgorithmInfo {
        self.algorithm.get().info()
    }

    /// The validated configuration the engine runs with.
    pub fn config(&self) -> &ListingConfig {
        &self.config
    }

    /// The fault and degradation envelope the engine runs under (the default
    /// is fault-free and unbounded).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Runs the algorithm on `graph`, streaming every listed clique into
    /// `sink`, and returns the [`RunReport`] (rounds, diagnostics, sink
    /// summary). Under a non-inert [`Resilience`] envelope the listing may be
    /// partial and the report's [`RunOutcome`] says why; the default envelope
    /// always reports [`RunOutcome::Complete`] and leaves the report
    /// byte-identical to an engine built without one.
    pub fn run(&self, graph: &Graph, sink: &mut dyn CliqueSink) -> RunReport {
        let algorithm = self.algorithm.get();
        let info = algorithm.info();
        let mut counted = Counted::new(sink);
        let mut report = if self.resilience.is_inert() {
            algorithm.run(graph, &self.config, &mut counted)
        } else {
            self.run_with_faults(graph, algorithm, &mut counted)
        };
        report.algorithm = info.name;
        report.model = Some(info.model);
        report.p = self.config.p;
        report.sink = SinkSummary {
            emitted: counted.emitted(),
            saturated: counted.is_saturated(),
        };
        // Like the thread counts, the kernel summary is an execution detail
        // kept out of `to_json`: the resolution is recomputed here as a pure
        // function of the input graph's degeneracy so callers can see which
        // kernel `Auto` picked without re-deriving the heuristic.
        report.kernel = KernelSummary {
            requested: self.config.kernel,
            resolved: self
                .config
                .kernel
                .resolve(graphcore::orientation::degeneracy_ordering(graph).degeneracy),
        };
        // Capability + build only — never the requested thread count — so the
        // serialised report stays byte-identical across parallelism settings.
        // `threads_used` is whatever fan-out the algorithm recorded while it
        // ran (clamped to the grant; 1 when it recorded nothing).
        let sharded = matches!(info.parallel, ParallelSupport::Sharded);
        let threads_granted = self.config.effective_threads(sharded);
        report.parallelism = ParallelismSummary {
            supported: sharded && cfg!(feature = "parallel"),
            sequential_reason: match info.parallel {
                ParallelSupport::Sequential(reason) => Some(reason),
                ParallelSupport::Sharded if !cfg!(feature = "parallel") => {
                    Some("built without the `parallel` feature")
                }
                ParallelSupport::Sharded => None,
            },
            threads_granted,
            threads_used: report
                .parallelism
                .threads_used
                .clamp(1, threads_granted.max(1)),
        };
        report
    }

    /// Runs the algorithm under a non-inert [`Resilience`] envelope.
    ///
    /// Every decision here is a pure function of the graph, the configuration
    /// and the envelope — never of thread scheduling — so degraded runs replay
    /// byte-identically at any thread grant:
    ///
    /// * crash-stopped nodes (crash round within the budget horizon) stop
    ///   reporting: cliques they own are filtered out of the listing and the
    ///   run is `Degraded` (or `Aborted` when nobody survives);
    /// * a lossy plan with the reliable transport enabled keeps the listing
    ///   intact and charges the transport's expected retransmission overhead
    ///   as an explicit `retransmit` phase; with the transport disabled (or
    ///   fully lossy links) the loss cannot be masked and the run degrades;
    /// * a round budget smaller than the rounds the run needed degrades the
    ///   run, or aborts it when nothing was emitted at all.
    fn run_with_faults(
        &self,
        graph: &Graph,
        algorithm: &dyn ListingAlgorithm,
        counted: &mut Counted<&mut dyn CliqueSink>,
    ) -> RunReport {
        let res = &self.resilience;
        let horizon = res.max_rounds.unwrap_or(u64::MAX);
        let n = graph.num_vertices();
        let mut crashed = vec![false; n];
        let mut crash_count = 0usize;
        for &(node, round) in res.fault_plan.crashes() {
            if round <= horizon && node < n && !crashed[node] {
                crashed[node] = true;
                crash_count += 1;
            }
        }
        let info = algorithm.info();
        // Unrecoverable: every node crash-stopped, nobody is left to report.
        if n > 0 && crash_count == n {
            let mut report = RunReport::new(info.name, info.model, self.config.p);
            report.outcome = RunOutcome::Aborted;
            return report;
        }
        let mut report = if crash_count > 0 {
            let mut filter = CrashFilter::new(&mut *counted as &mut dyn CliqueSink, crashed);
            algorithm.run(graph, &self.config, &mut filter)
        } else {
            algorithm.run(graph, &self.config, counted)
        };

        let mut reasons: Vec<String> = Vec::new();
        if crash_count > 0 {
            reasons.push(format!(
                "{crash_count} node(s) crash-stopped; cliques owned by crashed nodes are missing"
            ));
        }
        let drop_p = res.fault_plan.drop_probability();
        if drop_p > 0.0 {
            if !res.reliable_transport {
                reasons.push(format!(
                    "message loss (drop probability {drop_p}) without reliable transport"
                ));
            } else if drop_p >= 1.0 {
                reasons.push(
                    "links are fully lossy; the reliable transport cannot mask total loss"
                        .to_string(),
                );
            } else {
                // A stop-and-wait schedule over links that lose a `p` fraction
                // of rounds replays each lost round, costing `p / (1 - p)`
                // extra rounds per useful round.
                let base = report.rounds.total();
                let overhead = ((base as f64) * drop_p / (1.0 - drop_p)).ceil() as u64;
                report.rounds.add(phase::RETRANSMIT, overhead);
            }
        }
        if let Some(budget) = res.max_rounds {
            let needed = report.rounds.total();
            if needed > budget {
                if counted.emitted() == 0 {
                    report.outcome = RunOutcome::Aborted;
                    return report;
                }
                reasons.push(format!(
                    "round budget exhausted: needed {needed} of {budget}"
                ));
            }
        }
        if !reasons.is_empty() {
            report.outcome = RunOutcome::Degraded(reasons.join("; "));
        }
        report
    }

    /// Convenience: runs with a [`CollectSink`] and returns the report plus
    /// the listed cliques in canonical sorted order — never the sink's
    /// internal (hash-ordered, nondeterministic) iteration order, so callers
    /// can compare, diff and serialise the listing directly.
    pub fn collect(&self, graph: &Graph) -> (RunReport, Vec<Clique>) {
        let mut sink = CollectSink::new();
        let report = self.run(graph, &mut sink);
        (report, sink.sorted())
    }

    /// Convenience: runs with a [`CountSink`] (no per-clique storage) and
    /// returns the report plus the clique count.
    pub fn count(&self, graph: &Graph) -> (RunReport, u64) {
        let mut sink = CountSink::new();
        let report = self.run(graph, &mut sink);
        (report, sink.count)
    }
}

/// Typed, fallible builder for [`Engine`] — the replacement for the panicking
/// `ListingConfig` constructors and the incompatible free-function entry
/// points.
///
/// Unset options keep the defaults of [`ListingConfig::try_for_p`]; the
/// selected algorithm gets a final [`ListingAlgorithm::prepare`] pass (e.g.
/// `fast-k4` pins its variant), and [`EngineBuilder::build`] validates
/// everything, returning a [`ConfigError`] instead of panicking.
#[derive(Default)]
pub struct EngineBuilder {
    p: Option<usize>,
    algorithm: Option<String>,
    custom: Option<Box<dyn ListingAlgorithm>>,
    seed: Option<u64>,
    parallelism: Option<Parallelism>,
    kernel: Option<KernelStrategy>,
    exchange_mode: Option<ExchangeMode>,
    charge_policy: Option<ChargePolicy>,
    decomposition: Option<DecompositionConfig>,
    heavy_exponent: Option<f64>,
    bad_node_factor: Option<f64>,
    words_per_edge: Option<u64>,
    max_arb_iterations: Option<usize>,
    max_list_iterations: Option<usize>,
    arboricity_slack: Option<f64>,
    termination_exponent: Option<f64>,
    experiment_scale: bool,
    resilience: Option<Resilience>,
}

impl EngineBuilder {
    /// Creates a builder with nothing set (algorithm defaults to `general`).
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Sets the clique size `p ≥ 3` (required).
    pub fn p(mut self, p: usize) -> Self {
        self.p = Some(p);
        self
    }

    /// Selects a registered algorithm by name (see [`names`]); defaults to
    /// [`names::GENERAL`].
    pub fn algorithm(mut self, name: impl Into<String>) -> Self {
        self.algorithm = Some(name.into());
        self
    }

    /// Plugs in an external [`ListingAlgorithm`] implementation instead of a
    /// registered one.
    pub fn custom(mut self, algorithm: Box<dyn ListingAlgorithm>) -> Self {
        self.custom = Some(algorithm);
        self
    }

    /// Seed for all randomised choices (partitions, tie-breaking).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Thread parallelism of the local enumeration (defaults to
    /// [`Parallelism::Off`]). Never changes a run's output: algorithms with
    /// sharded local enumeration produce byte-identical listings at every
    /// setting, and CONGEST-simulated algorithms ignore the knob and record
    /// a sequential-fallback reason in the [`RunReport`]. `Threads(0)` is
    /// rejected by [`EngineBuilder::build`].
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = Some(parallelism);
        self
    }

    /// Selects the enumeration kernel of every local enumeration (defaults to
    /// [`KernelStrategy::Auto`], which resolves per graph by degeneracy).
    /// Like [`EngineBuilder::parallelism`], this knob never changes a run's
    /// output — both kernels are held to byte-identical listings — only its
    /// wall-clock profile.
    pub fn kernel(mut self, kernel: KernelStrategy) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Selects the in-cluster exchange accounting (the dense mode is the
    /// ablation of experiment E9).
    pub fn exchange_mode(mut self, mode: ExchangeMode) -> Self {
        self.exchange_mode = Some(mode);
        self
    }

    /// Overrides the round-charging policy for black-box primitives.
    pub fn charge_policy(mut self, policy: ChargePolicy) -> Self {
        self.charge_policy = Some(policy);
        self
    }

    /// Overrides the expander-decomposition parameters.
    pub fn decomposition(mut self, config: DecompositionConfig) -> Self {
        self.decomposition = Some(config);
        self
    }

    /// Overrides the heavy-node threshold exponent `γ` (`0 < γ < 1`).
    pub fn heavy_exponent(mut self, gamma: f64) -> Self {
        self.heavy_exponent = Some(gamma);
        self
    }

    /// Overrides the bad-node threshold constant (Section 2.4.1).
    pub fn bad_node_factor(mut self, factor: f64) -> Self {
        self.bad_node_factor = Some(factor);
        self
    }

    /// Overrides the number of words one edge occupies on the wire.
    pub fn words_per_edge(mut self, words: u64) -> Self {
        self.words_per_edge = Some(words);
        self
    }

    /// Overrides the safety cap on ARB-LIST iterations per LIST call.
    ///
    /// Note: the `eden-k4` baseline is *defined* as a (near-)single-pass
    /// algorithm and its [`ListingAlgorithm::prepare`] clamps this cap to at
    /// most 4 regardless of the override.
    pub fn max_arb_iterations(mut self, cap: usize) -> Self {
        self.max_arb_iterations = Some(cap);
        self
    }

    /// Overrides the safety cap on LIST invocations made by the driver.
    pub fn max_list_iterations(mut self, cap: usize) -> Self {
        self.max_list_iterations = Some(cap);
        self
    }

    /// Replaces the paper's `2 log n` arboricity slack with a constant.
    pub fn arboricity_slack(mut self, slack: f64) -> Self {
        self.arboricity_slack = Some(slack);
        self
    }

    /// Overrides the driver's termination exponent.
    pub fn termination_exponent(mut self, exponent: f64) -> Self {
        self.termination_exponent = Some(exponent);
        self
    }

    /// Applies the simulation-scale tuning of
    /// [`ListingConfig::for_experiments`] (constant slack, bare charge
    /// policy); explicit builder overrides still win.
    pub fn experiment_scale(mut self) -> Self {
        self.experiment_scale = true;
        self
    }

    /// Sets the fault and degradation envelope of every run (defaults to
    /// [`Resilience::fault_free`], which never alters behaviour). A
    /// `max_rounds` of `Some(0)` is rejected by [`EngineBuilder::build`].
    pub fn resilience(mut self, resilience: Resilience) -> Self {
        self.resilience = Some(resilience);
        self
    }

    /// Validates the configuration and constructs the [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the clique size is missing, too small
    /// or unsupported by the selected algorithm, when the algorithm name is
    /// unknown, or when any numeric parameter violates its precondition.
    pub fn build(self) -> Result<Engine, ConfigError> {
        let handle = match (self.custom, self.algorithm) {
            (Some(_), Some(name)) => {
                return Err(ConfigError::ConflictingAlgorithmSelection { name });
            }
            (Some(custom), None) => AlgorithmHandle::Custom(custom),
            (None, Some(name)) => match algorithm_named(&name) {
                Some(builtin) => AlgorithmHandle::Builtin(builtin),
                None => return Err(ConfigError::UnknownAlgorithm { name }),
            },
            (None, None) => AlgorithmHandle::Builtin(&GeneralListing),
        };
        let info = handle.get().info();

        let p = self.p.ok_or(ConfigError::MissingCliqueSize)?;
        let mut config = ListingConfig::try_for_p(p)?;
        if !info.supports_p(p) {
            return Err(ConfigError::UnsupportedCliqueSize {
                algorithm: info.name,
                p,
                min: info.min_p,
                max: info.max_p,
            });
        }

        if self.experiment_scale {
            config = config.for_experiments();
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        if let Some(parallelism) = self.parallelism {
            config.parallelism = parallelism;
        }
        if let Some(kernel) = self.kernel {
            config.kernel = kernel;
        }
        if let Some(mode) = self.exchange_mode {
            config.exchange_mode = mode;
        }
        if let Some(policy) = self.charge_policy {
            config.charge_policy = policy;
        }
        if let Some(decomposition) = self.decomposition {
            config.decomposition = decomposition;
        }
        if let Some(gamma) = self.heavy_exponent {
            config.heavy_exponent = gamma;
        }
        if let Some(factor) = self.bad_node_factor {
            config.bad_node_factor = factor;
        }
        if let Some(words) = self.words_per_edge {
            config.words_per_edge = words;
        }
        if let Some(cap) = self.max_arb_iterations {
            config.max_arb_iterations = cap;
        }
        if let Some(cap) = self.max_list_iterations {
            config.max_list_iterations = cap;
        }
        if let Some(slack) = self.arboricity_slack {
            config.arboricity_slack = Some(slack);
        }
        if let Some(exponent) = self.termination_exponent {
            config.termination_exponent_override = Some(exponent);
        }

        let config = handle.get().prepare(config);
        config.validate()?;
        let resilience = self.resilience.unwrap_or_default();
        resilience.validate()?;
        Ok(Engine {
            algorithm: handle,
            config,
            resilience,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{self, Rounds};
    use crate::verify::verify_cliques;
    use graphcore::gen;

    #[test]
    fn registry_exposes_all_builtins() {
        let names: Vec<&str> = algorithms().map(|a| a.info().name).collect();
        assert_eq!(
            names,
            vec![
                names::GENERAL,
                names::FAST_K4,
                names::CONGESTED_CLIQUE,
                names::NAIVE_BROADCAST,
                names::EDEN_K4
            ]
        );
        assert!(algorithm_named("general").is_some());
        assert!(algorithm_named("nonsense").is_none());
    }

    #[test]
    fn capability_ranges() {
        assert!(algorithm_named("general").unwrap().info().supports_p(17));
        let fast = algorithm_named("fast-k4").unwrap().info();
        assert!(fast.supports_p(4));
        assert!(!fast.supports_p(5));
        assert!(!fast.supports_p(3));
    }

    #[test]
    fn builder_rejects_missing_p() {
        assert_eq!(
            Engine::builder().build().unwrap_err(),
            ConfigError::MissingCliqueSize
        );
    }

    #[test]
    fn builder_rejects_small_p() {
        assert!(matches!(
            Engine::builder().p(2).build(),
            Err(ConfigError::CliqueSizeTooSmall { p: 2 })
        ));
    }

    #[test]
    fn builder_rejects_unknown_algorithm() {
        assert!(matches!(
            Engine::builder().p(4).algorithm("quantum").build(),
            Err(ConfigError::UnknownAlgorithm { .. })
        ));
    }

    #[test]
    fn builder_rejects_name_plus_custom_conflict() {
        struct Noop;
        impl ListingAlgorithm for Noop {
            fn info(&self) -> AlgorithmInfo {
                AlgorithmInfo {
                    name: "noop",
                    model: Model::Congest,
                    min_p: 3,
                    max_p: None,
                    parallel: ParallelSupport::Sequential("test stub"),
                    summary: "test stub",
                }
            }
            fn run(
                &self,
                _graph: &Graph,
                _config: &ListingConfig,
                _sink: &mut dyn CliqueSink,
            ) -> RunReport {
                RunReport::default()
            }
        }
        let err = Engine::builder()
            .p(4)
            .algorithm("fast-k4")
            .custom(Box::new(Noop))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ConflictingAlgorithmSelection { ref name } if name == "fast-k4"
        ));
    }

    #[test]
    fn builder_rejects_unsupported_p() {
        assert!(matches!(
            Engine::builder().p(5).algorithm("fast-k4").build(),
            Err(ConfigError::UnsupportedCliqueSize {
                algorithm: "fast-k4",
                p: 5,
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_bad_numeric_parameters() {
        assert!(matches!(
            Engine::builder().p(4).max_arb_iterations(0).build(),
            Err(ConfigError::ZeroIterationCap { .. })
        ));
        assert!(matches!(
            Engine::builder().p(4).heavy_exponent(2.0).build(),
            Err(ConfigError::BadExponent { .. })
        ));
        assert!(matches!(
            Engine::builder().p(4).arboricity_slack(-1.0).build(),
            Err(ConfigError::BadFactor { .. })
        ));
        assert!(matches!(
            Engine::builder().p(4).words_per_edge(0).build(),
            Err(ConfigError::ZeroWordsPerEdge)
        ));
    }

    #[test]
    fn prepare_pins_the_variant_and_overrides_apply() {
        let engine = Engine::builder()
            .p(4)
            .algorithm("fast-k4")
            .seed(9)
            .experiment_scale()
            .build()
            .unwrap();
        assert_eq!(engine.config().variant, Variant::FastK4);
        assert_eq!(engine.config().seed, 9);
        assert_eq!(engine.config().arboricity_slack, Some(1.0));
        let eden = Engine::builder().p(4).algorithm("eden-k4").build().unwrap();
        assert_eq!(eden.config().exchange_mode, ExchangeMode::DenseAssumption);
        assert!(eden.config().max_arb_iterations <= 4);
    }

    #[test]
    fn every_builtin_lists_exactly_on_a_small_graph() {
        let graph = gen::erdos_renyi(40, 0.35, 3);
        for algorithm in algorithms() {
            let info = algorithm.info();
            if !info.supports_p(4) {
                continue;
            }
            let engine = Engine::builder()
                .p(4)
                .algorithm(info.name)
                .seed(1)
                .build()
                .unwrap();
            let (report, cliques) = engine.collect(&graph);
            verify_cliques(&graph, 4, &cliques).unwrap_or_else(|e| panic!("{}: {e}", info.name));
            assert_eq!(report.algorithm, info.name);
            assert_eq!(report.sink.emitted as usize, cliques.len());
            assert_eq!(report.model, Some(info.model));
        }
    }

    #[test]
    fn count_and_collect_agree() {
        let graph = gen::erdos_renyi(50, 0.3, 11);
        let engine = Engine::builder().p(4).seed(5).build().unwrap();
        let (_, cliques) = engine.collect(&graph);
        let (report, count) = engine.count(&graph);
        assert_eq!(count as usize, cliques.len());
        assert_eq!(report.sink.emitted, count);
    }

    #[test]
    fn congested_clique_report_carries_stats() {
        let graph = gen::erdos_renyi(60, 0.3, 7);
        let engine = Engine::builder()
            .p(4)
            .algorithm("congested-clique")
            .build()
            .unwrap();
        let (report, cliques) = engine.collect(&graph);
        verify_cliques(&graph, 4, &cliques).expect("exact listing");
        let stats = report.congested_clique.expect("stats present");
        assert!(stats.predicted_rounds > 0.0);
        assert_eq!(report.model, Some(Model::CongestedClique));
    }

    #[test]
    fn custom_algorithms_plug_in() {
        /// A toy algorithm that emits a single fixed "clique".
        struct Fixed;
        impl ListingAlgorithm for Fixed {
            fn info(&self) -> AlgorithmInfo {
                AlgorithmInfo {
                    name: "fixed",
                    model: Model::Congest,
                    min_p: 3,
                    max_p: None,
                    parallel: ParallelSupport::Sequential("test stub"),
                    summary: "test stub",
                }
            }
            fn run(
                &self,
                _graph: &Graph,
                _config: &ListingConfig,
                sink: &mut dyn CliqueSink,
            ) -> RunReport {
                sink.accept(&[0, 1, 2]);
                let mut rounds = Rounds::new();
                rounds.add(result::phase::FINAL_BROADCAST, 1);
                RunReport {
                    rounds,
                    ..RunReport::default()
                }
            }
        }
        let engine = Engine::builder()
            .p(3)
            .custom(Box::new(Fixed))
            .build()
            .unwrap();
        let (report, cliques) = engine.collect(&Graph::new(3));
        assert_eq!(report.algorithm, "fixed");
        assert_eq!(report.sink.emitted, 1);
        assert_eq!(cliques.len(), 1);
        assert_eq!(report.total_rounds(), 1);
    }

    #[test]
    fn capability_metadata_marks_every_builtin_sharded() {
        // Since the cluster fan-out landed, every built-in path shards: the
        // dense local enumerations over root shards, the CONGEST pipelines
        // over cluster tasks. Capability stays a build/algorithm fact.
        for algorithm in algorithms() {
            let info = algorithm.info();
            assert_eq!(info.parallel, ParallelSupport::Sharded, "{}", info.name);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn threads_used_records_actual_fanout_not_the_grant() {
        // A tiny graph cannot feed 8 workers: the shard plan has at most one
        // shard per root vertex (and the CONGEST pipelines at most one task
        // per cluster), so the recorded fan-out must stay strictly below the
        // grant for EVERY algorithm (that is the point of `threads_used` —
        // the grant is an upper bound, not what happened).
        let tiny = gen::complete_graph(5);
        for algorithm in algorithms() {
            let info = algorithm.info();
            if !info.supports_p(4) {
                continue;
            }
            let engine = Engine::builder()
                .p(4)
                .algorithm(info.name)
                .seed(3)
                .parallelism(Parallelism::Threads(8))
                .build()
                .unwrap();
            let (report, count) = engine.count(&tiny);
            assert_eq!(count, 5, "{}", info.name);
            assert_eq!(report.parallelism.threads_granted, 8, "{}", info.name);
            assert!(report.parallelism.threads_used >= 1, "{}", info.name);
            assert!(
                report.parallelism.threads_used < 8,
                "{}: 5 roots cannot use an 8-thread grant (used {})",
                info.name,
                report.parallelism.threads_used
            );
            // Parallelism::Off pins the recorded fan-out to 1.
            let off = Engine::builder()
                .p(4)
                .algorithm(info.name)
                .seed(3)
                .build()
                .unwrap();
            let (report, _) = off.count(&tiny);
            assert_eq!(report.parallelism.threads_used, 1, "{}", info.name);
        }
    }

    #[test]
    fn builder_rejects_zero_threads() {
        assert_eq!(
            Engine::builder()
                .p(4)
                .parallelism(Parallelism::Threads(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroThreads
        );
        let engine = Engine::builder()
            .p(4)
            .parallelism(Parallelism::Threads(2))
            .build()
            .unwrap();
        assert_eq!(engine.config().parallelism, Parallelism::Threads(2));
    }

    #[test]
    fn congest_paths_report_sharded_support_consistent_with_the_build() {
        let graph = gen::erdos_renyi(30, 0.3, 2);
        let engine = Engine::builder()
            .p(4)
            .algorithm("general")
            .parallelism(Parallelism::Threads(4))
            .build()
            .unwrap();
        let (report, _) = engine.count(&graph);
        if cfg!(feature = "parallel") {
            assert!(report.parallelism.supported);
            assert_eq!(report.parallelism.sequential_reason, None);
            assert_eq!(report.parallelism.threads_granted, 4);
        } else {
            assert!(!report.parallelism.supported);
            assert_eq!(report.parallelism.threads_granted, 1);
            let reason = report.parallelism.sequential_reason.expect("reason");
            assert!(reason.contains("parallel"));
            assert!(report.to_json().contains(reason));
        }
        // Capability is a build/algorithm fact: the same engine without any
        // parallelism request serialises identically.
        let sequential = Engine::builder().p(4).algorithm("general").build().unwrap();
        let (sequential_report, _) = sequential.count(&graph);
        assert_eq!(
            sequential_report.parallelism.sequential_reason,
            report.parallelism.sequential_reason
        );
        assert_eq!(sequential_report.to_json(), report.to_json());
    }

    #[test]
    fn sharded_paths_report_threads_consistent_with_the_build() {
        let graph = gen::erdos_renyi(30, 0.3, 2);
        let engine = Engine::builder()
            .p(4)
            .algorithm("congested-clique")
            .parallelism(Parallelism::Threads(3))
            .build()
            .unwrap();
        let (report, _) = engine.count(&graph);
        if cfg!(feature = "parallel") {
            assert!(report.parallelism.supported);
            assert_eq!(report.parallelism.sequential_reason, None);
            assert_eq!(report.parallelism.threads_granted, 3);
            // A 30-vertex dense graph yields well over 3 shards, so the grant
            // is fully used — and `threads_used` never exceeds the grant.
            assert_eq!(report.parallelism.threads_used, 3);
        } else {
            assert!(!report.parallelism.supported);
            assert_eq!(report.parallelism.threads_granted, 1);
            assert_eq!(report.parallelism.threads_used, 1);
            let reason = report.parallelism.sequential_reason.expect("reason");
            assert!(reason.contains("parallel"));
        }
    }

    #[test]
    fn saturation_is_reported() {
        use crate::sink::FirstK;
        let graph = gen::complete_graph(10);
        let engine = Engine::builder().p(4).build().unwrap();
        let mut sink = FirstK::new(3);
        let report = engine.run(&graph, &mut sink);
        assert_eq!(sink.cliques.len(), 3);
        assert!(report.sink.saturated);
        assert_eq!(report.sink.emitted, 3);
        // Deterministic prefix: a second run yields the same first cliques.
        let mut again = FirstK::new(3);
        engine.run(&graph, &mut again);
        assert_eq!(sink.cliques, again.cliques);
    }
}
