//! The top-level `K_p` listing driver (Theorems 1.1 and 1.2).
//!
//! The driver applies Algorithm LIST on a sequence of graphs with
//! geometrically decreasing arboricity. Once the arboricity bound drops below
//! the termination threshold (`n^{max(p/(p+2), 3/4)}` for the general
//! algorithm, `n^{2/3}` for the fast `K_4` variant), every node broadcasts its
//! remaining outgoing edges to its neighbours and the remaining instances are
//! listed locally.
//!
//! The driver is reached through the [`Engine`](crate::Engine) (algorithms
//! `general` and `fast-k4`), which streams the listed cliques into a
//! [`CliqueSink`]. The pre-Engine free functions (`list_kp`,
//! `list_kp_with_mode`) survived PR 2 as deprecated wrappers and were removed
//! in the following release.

use crate::config::{ListingConfig, Variant};
use crate::list::list_once;
use crate::result::{phase, Diagnostics, Rounds};
use crate::sink::{CliqueSink, Dedup};
use graphcore::{Graph, Orientation};

/// Runs the CONGEST driver (general or fast-`K_4`, per `config.variant`),
/// emitting every listed clique into `sink` exactly once, and returns the
/// measured rounds, diagnostics, and the largest worker fan-out any stage
/// actually reached (for `RunReport.parallelism.threads_used`).
///
/// The caller is responsible for validating `config`
/// ([`ListingConfig::validate`]); the [`Engine`](crate::Engine) builder does
/// this. Degenerate graphs (fewer than `p` vertices, no edges) cost nothing.
pub(crate) fn run_congest(
    graph: &Graph,
    config: &ListingConfig,
    sink: &mut dyn CliqueSink,
) -> (Rounds, Diagnostics, usize) {
    match config.variant {
        // The fast-K4 light-node listing can emit cliques that do not contain
        // a goal edge and therefore survive into later iterations or the
        // final broadcast: dedup across the whole run to keep the engine's
        // exactly-once contract.
        Variant::FastK4 => {
            let mut dedup = Dedup::new(sink);
            run_congest_inner(graph, config, &mut dedup)
        }
        // The general algorithm only ever lists cliques containing a goal
        // edge of the current iteration, and goal edges are removed before
        // the next one: the per-ARB-LIST dedup already guarantees
        // exactly-once.
        Variant::General => run_congest_inner(graph, config, sink),
    }
}

fn run_congest_inner(
    graph: &Graph,
    config: &ListingConfig,
    mut sink: impl CliqueSink,
) -> (Rounds, Diagnostics, usize) {
    let n = graph.num_vertices();
    let mut rounds = Rounds::new();
    let mut diagnostics = Diagnostics::default();
    let mut threads_used = 1usize;
    if n < config.p || graph.num_edges() == 0 {
        return (rounds, diagnostics, threads_used);
    }

    let mut current = graph.clone();
    let mut orientation = Orientation::from_degeneracy(&current);
    let slack = config.arboricity_slack(n);
    let termination = (n.max(2) as f64).powf(config.termination_exponent());

    for iteration in 0..config.max_list_iterations {
        let a = orientation.max_out_degree().max(1);
        // Theorem 2.8 requires n^{p/(p+2)} < A / (2 log n); the driver keeps
        // iterating while the stronger termination threshold still holds.
        if (a as f64) / slack <= termination {
            break;
        }
        let step = list_once(
            &current,
            &orientation,
            a,
            config,
            config.seed.wrapping_add(iteration as u64 * 7919),
            &mut sink,
        );
        rounds.absorb(&step.rounds);
        diagnostics.absorb(&step.diagnostics);
        threads_used = threads_used.max(step.threads_used);
        diagnostics.list_iterations += 1;

        let new_a = step.remaining_orientation.max_out_degree().max(1);
        current = step.remaining;
        orientation = step.remaining_orientation;
        if new_a >= a {
            // No progress is possible (e.g. the graph is already below the
            // threshold in practice); fall through to the final broadcast.
            break;
        }
    }

    // Final phase: every node broadcasts its remaining outgoing edges to all
    // of its neighbours. Each edge {v, w} then carries out-deg(v) + out-deg(w)
    // edge descriptions, so the phase costs (max out-degree) edge-messages.
    let final_rounds = (orientation.max_out_degree() as u64).max(1) * config.words_per_edge;
    if current.num_edges() > 0 {
        rounds.add(phase::FINAL_BROADCAST, final_rounds);
        // Every member of a surviving clique sees all of the clique's edges
        // (its own incident ones plus the broadcast out-edges of the other
        // members), so the union of the node outputs is exactly the set of
        // K_p instances of the surviving graph. These cliques are disjoint
        // from the streamed ones for the general algorithm (each of those
        // lost a goal edge); the fast-K4 wrapper dedups. The enumeration is
        // one dense local pass over the surviving graph, so it runs through
        // the shared `local::stream_cliques` path — sharded across worker
        // threads under a `Parallelism` grant, byte-identical either way.
        threads_used = threads_used.max(crate::local::stream_cliques(&current, config, &mut sink));
    }
    (rounds, diagnostics, threads_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExchangeMode;
    use crate::engine::Engine;
    use crate::verify::verify_cliques;
    use graphcore::gen;

    fn general(p: usize, seed: u64) -> Engine {
        Engine::builder()
            .p(p)
            .algorithm("general")
            .seed(seed)
            .build()
            .expect("valid engine")
    }

    #[test]
    fn complete_graph_is_fully_listed() {
        let g = gen::complete_graph(12);
        for p in [3, 4, 5] {
            let (report, cliques) = general(p, 0xC11).collect(&g);
            verify_cliques(&g, p, &cliques).expect("complete listing");
            assert!(report.total_rounds() > 0);
        }
    }

    #[test]
    fn dense_random_graphs_are_fully_listed() {
        for seed in [1, 2] {
            let g = gen::erdos_renyi(90, 0.35, seed);
            for p in [4, 5] {
                let (_, cliques) = general(p, seed).collect(&g);
                verify_cliques(&g, p, &cliques)
                    .unwrap_or_else(|e| panic!("seed {seed}, p {p}: {e}"));
            }
        }
    }

    #[test]
    fn fast_k4_variant_is_complete() {
        for seed in [3, 4] {
            let g = gen::erdos_renyi(90, 0.35, seed);
            let engine = Engine::builder()
                .p(4)
                .algorithm("fast-k4")
                .seed(seed)
                .build()
                .unwrap();
            let (_, cliques) = engine.collect(&g);
            verify_cliques(&g, 4, &cliques).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn planted_cliques_are_listed() {
        let (g, planted) = gen::planted_cliques(100, 0.05, 3, 6, 9);
        let (_, cliques) = general(6, 0xC11).collect(&g);
        for c in &planted {
            assert!(cliques.contains(&c.vertices), "planted K6 missing");
        }
        verify_cliques(&g, 6, &cliques).expect("complete K6 listing");
    }

    #[test]
    fn graphs_without_cliques_yield_nothing() {
        let g = gen::complete_bipartite(20, 20);
        let (_, count) = general(4, 0xC11).count(&g);
        assert_eq!(count, 0);
        let empty = Graph::new(30);
        let (report, count) = general(4, 0xC11).count(&empty);
        assert_eq!(count, 0);
        assert_eq!(report.total_rounds(), 0);
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let g = gen::complete_graph(3);
        let (_, count) = general(4, 0xC11).count(&g);
        assert_eq!(count, 0);
        let g = gen::complete_graph(4);
        let (report, count) = general(4, 0xC11).count(&g);
        assert_eq!(count, 1);
        assert_eq!(report.sink.emitted, 1);
    }

    #[test]
    fn both_variants_agree_on_the_output_set() {
        let g = gen::erdos_renyi(80, 0.3, 31);
        let (_, general_cliques) = general(4, 0xC11).collect(&g);
        let fast = Engine::builder().p(4).algorithm("fast-k4").build().unwrap();
        let (_, fast_cliques) = fast.collect(&g);
        assert_eq!(general_cliques, fast_cliques);
    }

    #[test]
    fn dense_mode_lists_the_same_cliques() {
        let g = gen::erdos_renyi(80, 0.3, 37);
        let sparse = general(4, 0xC11);
        let dense = Engine::builder()
            .p(4)
            .exchange_mode(ExchangeMode::DenseAssumption)
            .build()
            .unwrap();
        let (sparse_report, sparse_cliques) = sparse.collect(&g);
        let (dense_report, dense_cliques) = dense.collect(&g);
        assert_eq!(sparse_cliques, dense_cliques);
        assert!(dense_report.total_rounds() >= sparse_report.total_rounds());
    }
}
