//! The top-level `K_p` listing driver (Theorems 1.1 and 1.2).
//!
//! The driver applies Algorithm LIST on a sequence of graphs with
//! geometrically decreasing arboricity. Once the arboricity bound drops below
//! the termination threshold (`n^{max(p/(p+2), 3/4)}` for the general
//! algorithm, `n^{2/3}` for the fast `K_4` variant), every node broadcasts its
//! remaining outgoing edges to its neighbours and the remaining instances are
//! listed locally.

use crate::config::ListingConfig;
use crate::list::list_once;
use crate::result::{phase, ListingResult};
use crate::sparse_listing::ExchangeMode;
use graphcore::{cliques, Graph, Orientation};

/// Lists every `K_p` instance of `graph` with the configured algorithm and
/// returns the union of the node outputs together with the measured round
/// complexity.
///
/// # Panics
///
/// Panics if `config.p < 3`.
pub fn list_kp(graph: &Graph, config: &ListingConfig) -> ListingResult {
    list_kp_with_mode(graph, config, ExchangeMode::SparsityAware)
}

/// Same as [`list_kp`] but with an explicit in-cluster exchange mode; the
/// dense mode is used by the ablation experiment and baselines.
pub fn list_kp_with_mode(
    graph: &Graph,
    config: &ListingConfig,
    exchange_mode: ExchangeMode,
) -> ListingResult {
    assert!(config.p >= 3, "clique size must be at least 3");
    let n = graph.num_vertices();
    let mut result = ListingResult::new();
    if n < config.p || graph.num_edges() == 0 {
        return result;
    }

    let mut current = graph.clone();
    let mut orientation = Orientation::from_degeneracy(&current);
    let slack = config.arboricity_slack(n);
    let termination = (n.max(2) as f64).powf(config.termination_exponent());

    for iteration in 0..config.max_list_iterations {
        let a = orientation.max_out_degree().max(1);
        // Theorem 2.8 requires n^{p/(p+2)} < A / (2 log n); the driver keeps
        // iterating while the stronger termination threshold still holds.
        if (a as f64) / slack <= termination {
            break;
        }
        let step = list_once(
            &current,
            &orientation,
            a,
            exchange_mode,
            config,
            config.seed.wrapping_add(iteration as u64 * 7919),
        );
        result.cliques.extend(step.listed);
        result.rounds.absorb(&step.rounds);
        result.diagnostics.absorb(&step.diagnostics);
        result.diagnostics.list_iterations += 1;

        let new_a = step.remaining_orientation.max_out_degree().max(1);
        current = step.remaining;
        orientation = step.remaining_orientation;
        if new_a >= a {
            // No progress is possible (e.g. the graph is already below the
            // threshold in practice); fall through to the final broadcast.
            break;
        }
    }

    // Final phase: every node broadcasts its remaining outgoing edges to all
    // of its neighbours. Each edge {v, w} then carries out-deg(v) + out-deg(w)
    // edge descriptions, so the phase costs (max out-degree) edge-messages.
    let final_rounds = (orientation.max_out_degree() as u64).max(1) * config.words_per_edge;
    if current.num_edges() > 0 {
        result.rounds.add(phase::FINAL_BROADCAST, final_rounds);
        // Every member of a surviving clique sees all of the clique's edges
        // (its own incident ones plus the broadcast out-edges of the other
        // members), so the union of the node outputs is exactly the set of
        // K_p instances of the surviving graph.
        for clique in cliques::list_cliques(&current, config.p) {
            result.cliques.insert(clique);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::verify::verify_against_ground_truth;
    use graphcore::gen;

    #[test]
    fn complete_graph_is_fully_listed() {
        let g = gen::complete_graph(12);
        for p in [3, 4, 5] {
            let result = list_kp(&g, &ListingConfig::for_p(p));
            verify_against_ground_truth(&g, p, &result).expect("complete listing");
            assert!(result.rounds.total() > 0);
        }
    }

    #[test]
    fn dense_random_graphs_are_fully_listed() {
        for seed in [1, 2] {
            let g = gen::erdos_renyi(90, 0.35, seed);
            for p in [4, 5] {
                let result = list_kp(&g, &ListingConfig::for_p(p).with_seed(seed));
                verify_against_ground_truth(&g, p, &result)
                    .unwrap_or_else(|e| panic!("seed {seed}, p {p}: {e}"));
            }
        }
    }

    #[test]
    fn fast_k4_variant_is_complete() {
        for seed in [3, 4] {
            let g = gen::erdos_renyi(90, 0.35, seed);
            let result = list_kp(&g, &ListingConfig::fast_k4().with_seed(seed));
            verify_against_ground_truth(&g, 4, &result)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn planted_cliques_are_listed() {
        let (g, planted) = gen::planted_cliques(100, 0.05, 3, 6, 9);
        let result = list_kp(&g, &ListingConfig::for_p(6));
        for c in &planted {
            assert!(result.cliques.contains(&c.vertices), "planted K6 missing");
        }
        verify_against_ground_truth(&g, 6, &result).expect("complete K6 listing");
    }

    #[test]
    fn graphs_without_cliques_yield_nothing() {
        let g = gen::complete_bipartite(20, 20);
        let result = list_kp(&g, &ListingConfig::for_p(4));
        assert!(result.is_empty());
        let empty = Graph::new(30);
        let result = list_kp(&empty, &ListingConfig::for_p(4));
        assert!(result.is_empty());
        assert_eq!(result.rounds.total(), 0);
    }

    #[test]
    fn tiny_graphs_are_handled() {
        let g = gen::complete_graph(3);
        let result = list_kp(&g, &ListingConfig::for_p(4));
        assert!(result.is_empty());
        let g = gen::complete_graph(4);
        let result = list_kp(&g, &ListingConfig::for_p(4));
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn both_variants_agree_on_the_output_set() {
        let g = gen::erdos_renyi(80, 0.3, 31);
        let general = list_kp(&g, &ListingConfig::for_p(4));
        let fast = list_kp(
            &g,
            &ListingConfig {
                variant: Variant::FastK4,
                ..ListingConfig::for_p(4)
            },
        );
        assert_eq!(general.cliques, fast.cliques);
    }

    #[test]
    fn dense_mode_lists_the_same_cliques() {
        let g = gen::erdos_renyi(80, 0.3, 37);
        let cfg = ListingConfig::for_p(4);
        let sparse = list_kp_with_mode(&g, &cfg, ExchangeMode::SparsityAware);
        let dense = list_kp_with_mode(&g, &cfg, ExchangeMode::DenseAssumption);
        assert_eq!(sparse.cliques, dense.cliques);
        assert!(dense.rounds.total() >= sparse.rounds.total());
    }
}
