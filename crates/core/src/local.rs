//! The shared local enumeration behind the dense listing paths.
//!
//! The `congested-clique` and `naive-broadcast` algorithms end in one dense
//! local step — enumerate every `K_p` of an (aggregate) graph into the
//! run's [`CliqueSink`] — and the CONGEST drivers (`general`/`fast-k4`'s
//! final broadcast, `eden-k4`'s naive finish) end in the same step over
//! their surviving graph. This module is that step's single implementation —
//! sequential by default, sharded across [`std::thread::scope`] workers when
//! the `parallel` feature is on and the validated
//! [`Parallelism`](crate::Parallelism) knob resolves above one thread.
//!
//! The parallel path keeps the engine's exactly-once deterministic emission
//! contract by construction: workers claim contiguous shards of the
//! degeneracy ordering from a [`ShardedEnumerator`] and fill one
//! [`ShardBuffer`] per shard; only the orchestrating thread touches the real
//! sink, replaying buffers in ascending shard order. Shard boundaries vary
//! with the thread count but their concatenation is always the full root
//! sequence, so the accept sequence is byte-identical to the sequential
//! path's (`DESIGN.md` §8). Saturation stops the replay immediately and
//! tells the workers to abandon their remaining shards.

use crate::config::ListingConfig;
use crate::sink::CliqueSink;
use graphcore::{cliques, Graph};

/// Emits every `p`-clique of `graph` into `sink` exactly once, in the
/// deterministic sequential order, honouring saturation. Uses
/// [`ListingConfig::effective_threads`] to decide between the sequential and
/// the sharded parallel path; callers are algorithms that opted into sharded
/// local enumeration.
///
/// Returns the worker count the enumeration **actually** fanned out to
/// (1 = sequential). This is what `RunReport.parallelism.threads_used`
/// records: a grant can exceed it on degenerate inputs (single-shard plans,
/// already-saturated sinks), and scaling reports must not attribute such runs
/// to the granted thread count.
pub(crate) fn stream_cliques(
    graph: &Graph,
    config: &ListingConfig,
    sink: &mut dyn CliqueSink,
) -> usize {
    if sink.is_saturated() {
        return 1;
    }
    #[cfg(feature = "parallel")]
    {
        let threads = config.effective_threads(true);
        if threads > 1 && config.p >= 3 {
            // Build the snapshot artifact (ordering + DAG + bitsets) once and
            // hand it to the sharded path — the same build/query split the
            // `query` crate's GraphSnapshot amortises across whole batches.
            let index = cliques::CliqueIndex::build(graph);
            return parallel_stream(graph, &index, config, threads, sink);
        }
    }
    cliques::for_each_clique_while_with(graph, config.p, config.kernel, |c| {
        sink.accept(c);
        !sink.is_saturated()
    });
    1
}

/// The sharded path: fan shards out over scoped worker threads through
/// [`graphcore::ordered_merge::ordered_merge`] (the single orchestration
/// shared with the graph-level drivers and the cluster fan-out of
/// `arb_list` — stop flag, ordered replay and backpressure live there), with
/// one [`ShardBuffer`] per shard bridging the enumeration to the
/// `dyn CliqueSink`. Only this thread ever touches `sink`. Returns the worker
/// count actually spawned (`threads` capped by the shard count; 1 when the
/// plan degenerates to a single shard and the enumeration runs inline).
#[cfg(feature = "parallel")]
fn parallel_stream(
    graph: &Graph,
    index: &cliques::CliqueIndex,
    config: &ListingConfig,
    threads: usize,
    sink: &mut dyn CliqueSink,
) -> usize {
    use crate::sink::ShardBuffer;
    use graphcore::cliques::{ShardedEnumerator, SHARDS_PER_THREAD};
    use graphcore::ordered_merge::ordered_merge as merge_shards;

    let p = config.p;
    let enumerator =
        ShardedEnumerator::with_index(graph, index, p, threads.saturating_mul(SHARDS_PER_THREAD))
            .with_kernel(config.kernel);
    let shards = enumerator.num_shards();
    if shards <= 1 {
        index.for_each_clique_while_with(graph, p, config.kernel, |c| {
            sink.accept(c);
            !sink.is_saturated()
        });
        return 1;
    }
    merge_shards(
        shards,
        threads,
        |shard| {
            let mut buffer = ShardBuffer::new(shard, p);
            enumerator.for_each_in_shard(shard, |c| buffer.accept(c));
            buffer
        },
        |buffer| buffer.replay_into(sink),
    );
    threads.min(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ListingConfig, Parallelism};
    use crate::sink::{CollectSink, FirstK};
    use graphcore::gen;

    fn config(p: usize, parallelism: Parallelism) -> ListingConfig {
        ListingConfig {
            parallelism,
            ..ListingConfig::for_p(p)
        }
    }

    #[test]
    fn stream_matches_ground_truth_at_every_setting() {
        let g = gen::erdos_renyi(60, 0.3, 4);
        for p in [3usize, 4, 5] {
            let truth = cliques::list_cliques(&g, p);
            for parallelism in [
                Parallelism::Off,
                Parallelism::Threads(1),
                Parallelism::Threads(2),
                Parallelism::Threads(8),
            ] {
                for kernel in [
                    cliques::KernelStrategy::Recursive,
                    cliques::KernelStrategy::Trie,
                    cliques::KernelStrategy::Auto,
                ] {
                    let mut sink = CollectSink::new();
                    let cfg = ListingConfig {
                        kernel,
                        ..config(p, parallelism)
                    };
                    stream_cliques(&g, &cfg, &mut sink);
                    assert_eq!(sink.sorted(), truth, "p={p} {parallelism:?} {kernel}");
                }
            }
        }
    }

    #[test]
    fn saturated_sinks_get_the_sequential_prefix() {
        let g = gen::complete_graph(16);
        let mut reference = FirstK::new(7);
        stream_cliques(&g, &config(4, Parallelism::Off), &mut reference);
        for threads in [2usize, 8] {
            let mut first = FirstK::new(7);
            stream_cliques(&g, &config(4, Parallelism::Threads(threads)), &mut first);
            assert_eq!(first.cliques, reference.cliques, "threads={threads}");
        }
        // An already-saturated sink costs nothing.
        let mut full = FirstK::new(0);
        stream_cliques(&g, &config(4, Parallelism::Threads(4)), &mut full);
        assert!(full.cliques.is_empty());
    }
}
