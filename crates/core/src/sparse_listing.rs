//! The sparsity-aware in-cluster listing step (Section 2.4.3).
//!
//! Once a cluster knows every edge that can form a `K_p` with one of its goal
//! edges, it must actually list those instances within its own bandwidth
//! (Challenge 2). The paper's procedure:
//!
//! 1. assign new dense identifiers `1..k` to the cluster nodes (Lemma 2.5);
//! 2. **reshuffle** the known edges so that a single cluster node is
//!    responsible for all known edges oriented away from each original vertex;
//! 3. draw a random partition of the whole vertex set into `≈ k^{1/p}` parts
//!    and broadcast it inside the cluster;
//! 4. assign every cluster node `p` parts through the radix representation of
//!    its new identifier and deliver to it all known edges between its parts;
//! 5. let every node list the `K_p` instances it now sees, emitting each one
//!    into the caller's [`CliqueSink`].
//!
//! The data movement is performed on the pooled knowledge and the *loads* of
//! steps 2–4 are computed exactly per node; rounds are charged through the
//! cluster router of Theorem 2.4. The sparsity-awareness is step 4: the
//! number of edges between two parts is proportional to the *actual* number of
//! known edges (Lemma 2.7), not to the worst case; the
//! [`ExchangeMode::DenseAssumption`] mode deliberately ignores this and is
//! used by the ablation experiment and the Eden-et-al-style baseline. The
//! mode is selected by [`ListingConfig::exchange_mode`] (a builder option of
//! the [`Engine`](crate::Engine)).
//!
//! The emission into the sink may contain duplicates across goal edges (a
//! clique can contain several goal edges of the same cluster) and across
//! clusters; the caller (`arb_list`) wraps the downstream sink in a
//! per-invocation [`Dedup`](crate::sink::Dedup) layer, preserving the
//! engine's exactly-once contract. The emission *order* needs no such
//! repair: goal edges are visited in sorted order and each goal edge's
//! cliques stream in ascending canonical order, so the raw (pre-dedup)
//! sequence is already deterministic — the `Dedup` exists solely for the
//! genuine duplicates above, never to absorb iteration-order noise (see
//! `dedup_exists_for_duplicates_not_order` in `arb_list`).
//!
//! All load accounting is flat: per-rank loads live in `Vec`s keyed by the
//! dense identifiers of Lemma 2.5 ([`ClusterIds`]), part-pair counts in a
//! [`PairTable`] over the radix parts — no hashing on the per-edge path and
//! no hash-order iteration anywhere.

use crate::config::ListingConfig;
use crate::parts::TupleAssignment;
use crate::result::{phase, Rounds};
use crate::sink::CliqueSink;
use expander::{Cluster, ClusterIds, ClusterRouter, DenseTable, PairTable};
use graphcore::partition::VertexPartition;
use graphcore::{cliques, EdgeSet, Graph};

pub use crate::config::ExchangeMode;

/// Cost outcome of the in-cluster listing step for one cluster (the listed
/// cliques are streamed to the sink, not returned).
#[derive(Clone, Debug, Default)]
pub struct SparseListingOutcome {
    /// Rounds per phase (identifier assignment, reshuffle, partition
    /// broadcast, part exchange).
    pub rounds: Rounds,
    /// Maximum per-node word load of the reshuffle step.
    pub reshuffle_load: u64,
    /// Maximum per-node word load of the part-exchange step.
    pub exchange_load: u64,
}

/// Input of the in-cluster listing step.
pub struct SparseListingInput<'a> {
    /// The cluster performing the listing.
    pub cluster: &'a Cluster,
    /// The `E_m` graph (used for the cluster's internal bandwidth).
    pub em_graph: &'a Graph,
    /// Known edges as oriented `(source, target)` pairs, deduplicated.
    pub known_edges: &'a [(u32, u32)],
    /// Goal edges of the cluster.
    pub goal_edges: &'a EdgeSet,
    /// Per-cluster-node words of outside knowledge, keyed by dense rank (for
    /// the reshuffle's send load).
    pub learned_words: &'a DenseTable,
    /// Number of vertices of the whole graph.
    pub n: usize,
    /// Orientation out-degree bound of the current graph (`n^d`), used only
    /// by the dense-assumption mode.
    pub arboricity_bound: usize,
}

/// Runs the sparsity-aware listing for one cluster, streaming the listed
/// cliques into `sink` (in sorted-goal-edge order, possibly with duplicates —
/// see the module docs) and returning the rounds charged.
pub fn cluster_listing(
    input: &SparseListingInput<'_>,
    config: &ListingConfig,
    seed: u64,
    sink: &mut dyn CliqueSink,
) -> SparseListingOutcome {
    let mut outcome = SparseListingOutcome::default();
    let cluster = input.cluster;
    let k = cluster.len();
    let n = input.n;
    let p = config.p;
    let mode = config.exchange_mode;
    let words = config.words_per_edge;
    if k == 0 || input.known_edges.is_empty() {
        return outcome;
    }

    let policy = config.charge_policy;
    let ids = ClusterIds::assign(cluster);
    outcome
        .rounds
        .add(phase::ID_ASSIGNMENT, ClusterIds::charged_rounds(n, &policy));

    let router = ClusterRouter::new(cluster, input.em_graph, n, policy);

    // --- Step 2: reshuffle ------------------------------------------------
    // Responsibility: rank i handles original vertices in one contiguous
    // block of size ceil(n/k).
    let block = n.div_ceil(k).max(1);
    let responsible_rank = |vertex: u32| -> usize { ((vertex as usize) / block).min(k - 1) };

    // Send load: what each cluster node currently holds (its own outgoing
    // incident edges plus what it learned from outside). One pass over the
    // known edges, crediting cluster-member sources by dense rank.
    let mut send_load = DenseTable::new(k);
    // Receive load: each responsible node receives the known out-edges of the
    // vertices in its block.
    let mut recv_load = DenseTable::new(k);
    for &(src, _) in input.known_edges {
        if let Some(rank) = ids.rank(src) {
            send_load.add(rank, words);
        }
        recv_load.add(responsible_rank(src), words);
    }
    for (rank, learned) in input.learned_words.iter() {
        send_load.add(rank, learned);
    }
    outcome.reshuffle_load = send_load.max().max(recv_load.max());
    outcome.rounds.add(
        phase::RESHUFFLE,
        router.rounds_for_load(outcome.reshuffle_load),
    );

    // --- Step 3: random partition and its broadcast ------------------------
    let assignment = TupleAssignment::new(k, p);
    let partition = VertexPartition::random(n, assignment.num_parts, seed);
    // Every node announces the parts of the ~n/k vertices it is responsible
    // for to every other cluster node: load ≈ n words per node.
    outcome
        .rounds
        .add(phase::PARTITION_BROADCAST, router.rounds_for_load(n as u64));

    // --- Step 4: part exchange ---------------------------------------------
    // Count known edges between each unordered pair of parts — a flat
    // upper-triangular table over the `P ≈ k^{1/p}` parts.
    let mut pair_counts = PairTable::new(assignment.num_parts);
    for &(src, dst) in input.known_edges {
        pair_counts.add(partition.part_of(src), partition.part_of(dst), 1);
    }
    // Receive load per rank: sum over its tuples of the counts of every pair
    // of parts in the tuple.
    let dense_pair_load = {
        // Number of vertex pairs between two parts if the graph were complete:
        // used by the dense-assumption ablation.
        let part_size = (n as u64).div_ceil(u64::from(assignment.num_parts)).max(1);
        part_size * part_size
    };
    let mut max_exchange_recv = 0u64;
    // Scratch for the distinct part pairs of one tuple: at most p(p−1)/2
    // entries, sorted + deduped in place (no per-tuple hash set).
    let mut tuple_pairs: Vec<(u32, u32)> = Vec::new();
    for rank in 0..k {
        let mut load = 0u64;
        for t in assignment.tuples_of(rank) {
            assignment.distinct_pairs_into(t, &mut tuple_pairs);
            for &(a, b) in &tuple_pairs {
                let count = match mode {
                    ExchangeMode::SparsityAware => pair_counts.get(a, b),
                    ExchangeMode::DenseAssumption => dense_pair_load,
                };
                load += count * words;
            }
        }
        max_exchange_recv = max_exchange_recv.max(load);
    }
    // Send load per rank: each known edge (owned by the responsible node of
    // its source) is sent to every node owning a tuple containing both
    // endpoint parts.
    let mut exchange_send = DenseTable::new(k);
    for &(src, dst) in input.known_edges {
        let (a, b) = (partition.part_of(src), partition.part_of(dst));
        let copies = assignment.owners_needing(a.min(b), a.max(b));
        exchange_send.add(responsible_rank(src), copies * words);
    }
    let max_exchange_send = match mode {
        ExchangeMode::SparsityAware => exchange_send.max(),
        ExchangeMode::DenseAssumption => {
            // Each responsible node nominally forwards its worst-case share of
            // a dense graph: (n/k)·n^d edges, each to p²·k^{1−2/p} owners.
            let share = (n as u64).div_ceil(k as u64) * input.arboricity_bound as u64;
            let owners =
                ((p * p) as u64) * ((k as f64).powf(1.0 - 2.0 / p as f64).ceil() as u64).max(1);
            share * owners * words
        }
    };
    outcome.exchange_load = max_exchange_send.max(max_exchange_recv);
    outcome.rounds.add(
        phase::PART_EXCHANGE,
        router.rounds_for_load(outcome.exchange_load),
    );

    // --- Step 5: local listing ---------------------------------------------
    // Every K_p whose edges are all known and which contains a goal edge is
    // listed by the owner of the tuple of its vertex parts; since every tuple
    // is owned, this equals the set of K_p in the known-edge graph containing
    // a goal edge. Goal edges are visited in sorted order so the emission
    // order is deterministic (EdgeSet iteration order is not). The
    // per-cluster enumerator amortises its bitsets and candidate arena over
    // all goal edges of the cluster.
    let undirected: Vec<(u32, u32)> = input
        .known_edges
        .iter()
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    let known_graph = Graph::from_edges(n, &undirected).expect("known edges are in range");
    let mut enumerator =
        cliques::EdgeCliqueEnumerator::with_strategy(&known_graph, p, config.kernel);
    for e in input.goal_edges.to_sorted_vec() {
        if sink.is_saturated() {
            break;
        }
        // Stream the cliques of this goal edge directly into the sink
        // (ascending canonical order, no per-edge clique materialisation); a
        // saturated sink aborts mid-edge and the enumerator resets its
        // scratch state at the next query.
        enumerator.for_each_containing_edge_while(e.u(), e.v(), |clique| {
            sink.accept(clique);
            !sink.is_saturated()
        });
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CollectSink, Dedup};
    use graphcore::{gen, Clique, Edge, Orientation};

    fn inputs_for(
        graph: &Graph,
        cluster_size: usize,
    ) -> (Cluster, Graph, Vec<(u32, u32)>, EdgeSet) {
        let cluster = Cluster::new(0, (0..cluster_size as u32).collect());
        let em: EdgeSet = graph
            .edges()
            .filter(|&(u, v)| (u as usize) < cluster_size && (v as usize) < cluster_size)
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        let em_graph = Graph::from_edge_set(graph.num_vertices(), &em).unwrap();
        let orientation = Orientation::from_degeneracy(graph);
        let known: Vec<(u32, u32)> = graph
            .edges()
            .map(|(u, v)| match orientation.source_of(u, v) {
                Some(s) if s == v => (v, u),
                _ => (u, v),
            })
            .collect();
        (cluster, em_graph, known, em)
    }

    fn listed(
        input: &SparseListingInput<'_>,
        config: &ListingConfig,
        seed: u64,
    ) -> (SparseListingOutcome, std::collections::HashSet<Clique>) {
        let mut collect = Dedup::new(CollectSink::new());
        let outcome = cluster_listing(input, config, seed, &mut collect);
        (outcome, collect.into_inner().into_cliques())
    }

    #[test]
    fn lists_all_cliques_with_a_goal_edge() {
        let g = gen::erdos_renyi(40, 0.3, 5);
        let (cluster, em_graph, known, em) = inputs_for(&g, 15);
        let learned = DenseTable::new(cluster.len());
        let input = SparseListingInput {
            cluster: &cluster,
            em_graph: &em_graph,
            known_edges: &known,
            goal_edges: &em,
            learned_words: &learned,
            n: 40,
            arboricity_bound: 10,
        };
        let cfg = ListingConfig::for_p(4);
        let (out, got) = listed(&input, &cfg, 3);
        // Expected: all K4 of g containing an edge inside the cluster prefix.
        let expected: std::collections::HashSet<Clique> = cliques::list_cliques(&g, 4)
            .into_iter()
            .filter(|c| {
                c.iter()
                    .enumerate()
                    .any(|(i, &a)| c[i + 1..].iter().any(|&b| em.contains_pair(a, b)))
            })
            .collect();
        assert_eq!(got, expected);
        assert!(out.rounds.total() > 0);
    }

    #[test]
    fn dense_mode_charges_at_least_as_many_rounds() {
        let g = gen::erdos_renyi(60, 0.2, 9);
        let (cluster, em_graph, known, em) = inputs_for(&g, 20);
        let learned = DenseTable::new(cluster.len());
        let input = SparseListingInput {
            cluster: &cluster,
            em_graph: &em_graph,
            known_edges: &known,
            goal_edges: &em,
            learned_words: &learned,
            n: 60,
            arboricity_bound: 12,
        };
        let cfg = ListingConfig::for_p(4);
        let dense_cfg = cfg.with_exchange_mode(ExchangeMode::DenseAssumption);
        let (sparse, sparse_cliques) = listed(&input, &cfg, 1);
        let (dense, dense_cliques) = listed(&input, &dense_cfg, 1);
        assert!(
            dense.rounds.for_phase(phase::PART_EXCHANGE)
                >= sparse.rounds.for_phase(phase::PART_EXCHANGE)
        );
        // Both list exactly the same cliques.
        assert_eq!(sparse_cliques, dense_cliques);
    }

    #[test]
    fn empty_inputs_are_cheap() {
        let g = gen::path_graph(10);
        let cluster = Cluster::new(0, vec![0, 1]);
        let em_graph = g.clone();
        let learned = DenseTable::new(cluster.len());
        let goal = EdgeSet::new();
        let input = SparseListingInput {
            cluster: &cluster,
            em_graph: &em_graph,
            known_edges: &[],
            goal_edges: &goal,
            learned_words: &learned,
            n: 10,
            arboricity_bound: 1,
        };
        let cfg = ListingConfig::for_p(4);
        let (out, got) = listed(&input, &cfg, 1);
        assert!(got.is_empty());
        assert_eq!(out.rounds.total(), 0);
    }

    #[test]
    fn loads_grow_with_edge_count() {
        let sparse_graph = gen::erdos_renyi(50, 0.08, 2);
        let dense_graph = gen::erdos_renyi(50, 0.5, 2);
        let cfg = ListingConfig::for_p(5);
        let mut loads = Vec::new();
        for g in [&sparse_graph, &dense_graph] {
            let (cluster, em_graph, known, em) = inputs_for(g, 25);
            let learned = DenseTable::new(cluster.len());
            let input = SparseListingInput {
                cluster: &cluster,
                em_graph: &em_graph,
                known_edges: &known,
                goal_edges: &em,
                learned_words: &learned,
                n: 50,
                arboricity_bound: 20,
            };
            let (out, _) = listed(&input, &cfg, 7);
            loads.push(out.exchange_load);
        }
        assert!(
            loads[1] > loads[0],
            "dense load {} <= sparse load {}",
            loads[1],
            loads[0]
        );
    }

    #[test]
    fn saturated_sinks_stop_the_local_enumeration_but_not_the_rounds() {
        let g = gen::complete_graph(20);
        let (cluster, em_graph, known, em) = inputs_for(&g, 20);
        let learned = DenseTable::new(cluster.len());
        let input = SparseListingInput {
            cluster: &cluster,
            em_graph: &em_graph,
            known_edges: &known,
            goal_edges: &em,
            learned_words: &learned,
            n: 20,
            arboricity_bound: 19,
        };
        let cfg = ListingConfig::for_p(4);
        let mut first = crate::sink::FirstK::new(1);
        let out = cluster_listing(&input, &cfg, 3, &mut first);
        assert_eq!(first.cliques.len(), 1);
        // Rounds are still the full communication cost.
        let (full, _) = listed(&input, &cfg, 3);
        assert_eq!(out.rounds.total(), full.rounds.total());
    }
}
