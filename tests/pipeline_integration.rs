//! End-to-end integration tests: the full CONGEST pipeline (expander
//! decomposition → ARB-LIST → LIST → driver) and the CONGESTED CLIQUE
//! algorithm, across graph families, clique sizes and seeds, verified against
//! the exact sequential enumeration.

use distributed_clique_listing::cliquelist::baselines::{
    eden_style_k4, naive_broadcast_listing, triangle_listing,
};
use distributed_clique_listing::cliquelist::{
    congested_clique_list, list_kp, list_kp_with_mode, verify_against_ground_truth, ExchangeMode,
    ListingConfig, Variant,
};
use distributed_clique_listing::graphcore::{gen, Graph};

fn check(graph: &Graph, p: usize, config: &ListingConfig) {
    let result = list_kp(graph, config);
    verify_against_ground_truth(graph, p, &result)
        .unwrap_or_else(|e| panic!("p = {p}, n = {}: {e}", graph.num_vertices()));
}

#[test]
fn general_algorithm_on_erdos_renyi_for_p_4_to_6() {
    for seed in [1, 2, 3] {
        let graph = gen::erdos_renyi(80, 0.35, seed);
        for p in [4, 5, 6] {
            check(&graph, p, &ListingConfig::for_p(p).with_seed(seed));
        }
    }
}

#[test]
fn general_algorithm_on_dense_tripartite_with_planted_cliques() {
    for seed in [5, 9] {
        let (graph, planted) = gen::clique_listing_workload(120, 4, 0.7, 3, seed);
        let result = list_kp(&graph, &ListingConfig::for_p(4).with_seed(seed));
        verify_against_ground_truth(&graph, 4, &result).expect("exact listing");
        for c in &planted {
            assert!(result.cliques.contains(&c.vertices));
        }
    }
}

#[test]
fn experiment_configuration_is_also_exact() {
    // The experiment configuration (constant slack, bare charge policy)
    // changes only the round accounting, never the output.
    let (graph, _) = gen::clique_listing_workload(130, 5, 0.7, 3, 11);
    let config = ListingConfig::for_p(5).for_experiments();
    let result = list_kp(&graph, &config);
    verify_against_ground_truth(&graph, 5, &result).expect("exact listing");
    assert!(
        result.diagnostics.list_iterations >= 1,
        "pipeline must be active"
    );
    assert!(result.diagnostics.clusters >= 1);
}

#[test]
fn fast_k4_on_multiple_families() {
    let graphs: Vec<Graph> = vec![
        gen::erdos_renyi(90, 0.3, 7),
        gen::barabasi_albert(150, 6, 7),
        gen::planted_cliques(100, 0.05, 4, 4, 7).0,
        gen::complete_graph(20),
    ];
    for graph in &graphs {
        let result = list_kp(graph, &ListingConfig::fast_k4());
        verify_against_ground_truth(graph, 4, &result).expect("fast K4 exact");
    }
}

#[test]
fn skewed_degree_graphs_for_p_5() {
    let graph = gen::barabasi_albert(200, 8, 3);
    check(&graph, 5, &ListingConfig::for_p(5));
    let rmat = gen::rmat(7, 10, (0.6, 0.18, 0.18, 0.04), 3);
    check(&rmat, 5, &ListingConfig::for_p(5));
}

#[test]
fn congested_clique_matches_ground_truth_across_densities() {
    for density in [0.05, 0.3, 0.7] {
        let graph = gen::multipartite(150, 3, density, 13);
        for p in [3, 4] {
            let report = congested_clique_list(&graph, p, 5);
            verify_against_ground_truth(&graph, p, &report.result).expect("CC listing exact");
        }
    }
}

#[test]
fn all_baselines_agree_with_ground_truth() {
    let graph = gen::erdos_renyi(70, 0.35, 17);
    let naive = naive_broadcast_listing(&graph, &ListingConfig::for_p(4));
    verify_against_ground_truth(&graph, 4, &naive).expect("naive exact");
    let eden = eden_style_k4(&graph, 3);
    verify_against_ground_truth(&graph, 4, &eden).expect("eden-style exact");
    let triangles = triangle_listing(&graph, 3);
    verify_against_ground_truth(&graph, 3, &triangles).expect("triangles exact");
}

#[test]
fn exchange_modes_and_variants_produce_identical_outputs() {
    let (graph, _) = gen::clique_listing_workload(110, 4, 0.6, 3, 23);
    let cfg = ListingConfig::for_p(4).for_experiments();
    let sparse = list_kp_with_mode(&graph, &cfg, ExchangeMode::SparsityAware);
    let dense = list_kp_with_mode(&graph, &cfg, ExchangeMode::DenseAssumption);
    let fast = list_kp(
        &graph,
        &ListingConfig {
            variant: Variant::FastK4,
            ..cfg
        },
    );
    assert_eq!(sparse.cliques, dense.cliques);
    assert_eq!(sparse.cliques, fast.cliques);
    verify_against_ground_truth(&graph, 4, &sparse).expect("exact");
}

#[test]
fn degenerate_inputs_are_handled() {
    // No vertices, no edges, fewer vertices than p, p-free graphs.
    assert!(list_kp(&Graph::new(0), &ListingConfig::for_p(4)).is_empty());
    assert!(list_kp(&Graph::new(50), &ListingConfig::for_p(4)).is_empty());
    assert!(list_kp(&gen::complete_graph(3), &ListingConfig::for_p(4)).is_empty());
    let bipartite = gen::complete_bipartite(25, 25);
    let result = list_kp(&bipartite, &ListingConfig::for_p(4));
    assert!(result.is_empty());
    verify_against_ground_truth(&bipartite, 4, &result).expect("empty output is exact");
}

#[test]
fn rounds_are_reported_for_non_trivial_runs() {
    let (graph, _) = gen::clique_listing_workload(100, 4, 0.7, 2, 31);
    let result = list_kp(&graph, &ListingConfig::for_p(4).for_experiments());
    assert!(result.rounds.total() > 0);
    // Every phase that reports rounds must be one of the documented phases.
    use distributed_clique_listing::cliquelist::result::phase;
    let known = [
        phase::DECOMPOSITION,
        phase::MEMBERSHIP,
        phase::HEAVY_UPLOAD,
        phase::LIGHT_PROBES,
        phase::ID_ASSIGNMENT,
        phase::RESHUFFLE,
        phase::PARTITION_BROADCAST,
        phase::PART_EXCHANGE,
        phase::LIGHT_LISTING,
        phase::FINAL_BROADCAST,
    ];
    for (name, rounds) in result.rounds.iter() {
        assert!(known.contains(&name), "unknown phase {name}");
        assert!(rounds > 0);
    }
}
