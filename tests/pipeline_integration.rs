//! End-to-end integration tests: the full CONGEST pipeline (expander
//! decomposition → ARB-LIST → LIST → driver) and the CONGESTED CLIQUE
//! algorithm, across graph families, clique sizes and seeds, all through the
//! streaming `Engine` API and verified against the exact sequential
//! enumeration.

use distributed_clique_listing::cliquelist::{verify_cliques, CollectSink, Engine, ExchangeMode};
use distributed_clique_listing::graphcore::{gen, Graph};

fn engine(p: usize, algorithm: &str, seed: u64) -> Engine {
    Engine::builder()
        .p(p)
        .algorithm(algorithm)
        .seed(seed)
        .build()
        .unwrap_or_else(|e| panic!("engine p={p} algorithm={algorithm}: {e}"))
}

fn check(graph: &Graph, p: usize, seed: u64) {
    let (_, cliques) = engine(p, "general", seed).collect(graph);
    verify_cliques(graph, p, &cliques)
        .unwrap_or_else(|e| panic!("p = {p}, n = {}: {e}", graph.num_vertices()));
}

#[test]
fn general_algorithm_on_erdos_renyi_for_p_4_to_6() {
    for seed in [1, 2, 3] {
        let graph = gen::erdos_renyi(80, 0.35, seed);
        for p in [4, 5, 6] {
            check(&graph, p, seed);
        }
    }
}

#[test]
fn general_algorithm_on_dense_tripartite_with_planted_cliques() {
    for seed in [5, 9] {
        let (graph, planted) = gen::clique_listing_workload(120, 4, 0.7, 3, seed);
        let (_, cliques) = engine(4, "general", seed).collect(&graph);
        verify_cliques(&graph, 4, &cliques).expect("exact listing");
        for c in &planted {
            assert!(cliques.contains(&c.vertices));
        }
    }
}

#[test]
fn experiment_configuration_is_also_exact() {
    // The experiment configuration (constant slack, bare charge policy)
    // changes only the round accounting, never the output.
    let (graph, _) = gen::clique_listing_workload(130, 5, 0.7, 3, 11);
    let exp = Engine::builder()
        .p(5)
        .experiment_scale()
        .build()
        .expect("valid engine");
    let (report, cliques) = exp.collect(&graph);
    verify_cliques(&graph, 5, &cliques).expect("exact listing");
    assert!(
        report.diagnostics.list_iterations >= 1,
        "pipeline must be active"
    );
    assert!(report.diagnostics.clusters >= 1);
}

#[test]
fn fast_k4_on_multiple_families() {
    let graphs: Vec<Graph> = vec![
        gen::erdos_renyi(90, 0.3, 7),
        gen::barabasi_albert(150, 6, 7),
        gen::planted_cliques(100, 0.05, 4, 4, 7).0,
        gen::complete_graph(20),
    ];
    for graph in &graphs {
        let (_, cliques) = engine(4, "fast-k4", 0xC11).collect(graph);
        verify_cliques(graph, 4, &cliques).expect("fast K4 exact");
    }
}

#[test]
fn skewed_degree_graphs_for_p_5() {
    let graph = gen::barabasi_albert(200, 8, 3);
    check(&graph, 5, 0xC11);
    let rmat = gen::rmat(7, 10, (0.6, 0.18, 0.18, 0.04), 3);
    check(&rmat, 5, 0xC11);
}

#[test]
fn congested_clique_matches_ground_truth_across_densities() {
    for density in [0.05, 0.3, 0.7] {
        let graph = gen::multipartite(150, 3, density, 13);
        for p in [3, 4] {
            let (report, cliques) = engine(p, "congested-clique", 5).collect(&graph);
            verify_cliques(&graph, p, &cliques).expect("CC listing exact");
            assert!(report.congested_clique.is_some());
        }
    }
}

#[test]
fn all_baselines_agree_with_ground_truth() {
    let graph = gen::erdos_renyi(70, 0.35, 17);
    let (_, naive) = engine(4, "naive-broadcast", 3).collect(&graph);
    verify_cliques(&graph, 4, &naive).expect("naive exact");
    let (_, eden) = engine(4, "eden-k4", 3).collect(&graph);
    verify_cliques(&graph, 4, &eden).expect("eden-style exact");
    let (_, triangles) = engine(3, "general", 3).collect(&graph);
    verify_cliques(&graph, 3, &triangles).expect("triangles exact");
    // Triangle-free inputs yield nothing through the p = 3 pipeline.
    let bipartite = gen::complete_bipartite(15, 15);
    assert_eq!(engine(3, "general", 3).count(&bipartite).1, 0);
}

#[test]
fn exchange_modes_and_variants_produce_identical_outputs() {
    let (graph, _) = gen::clique_listing_workload(110, 4, 0.6, 3, 23);
    let sparse_engine = Engine::builder()
        .p(4)
        .experiment_scale()
        .exchange_mode(ExchangeMode::SparsityAware)
        .build()
        .expect("valid engine");
    let dense_engine = Engine::builder()
        .p(4)
        .experiment_scale()
        .exchange_mode(ExchangeMode::DenseAssumption)
        .build()
        .expect("valid engine");
    let fast_engine = Engine::builder()
        .p(4)
        .algorithm("fast-k4")
        .experiment_scale()
        .build()
        .expect("valid engine");
    let (_, sparse) = sparse_engine.collect(&graph);
    let (_, dense) = dense_engine.collect(&graph);
    let (_, fast) = fast_engine.collect(&graph);
    assert_eq!(sparse, dense);
    assert_eq!(sparse, fast);
    verify_cliques(&graph, 4, &sparse).expect("exact");
}

#[test]
fn degenerate_inputs_are_handled() {
    // No vertices, no edges, fewer vertices than p, p-free graphs.
    let k4 = engine(4, "general", 0xC11);
    assert_eq!(k4.count(&Graph::new(0)).1, 0);
    assert_eq!(k4.count(&Graph::new(50)).1, 0);
    assert_eq!(k4.count(&gen::complete_graph(3)).1, 0);
    let bipartite = gen::complete_bipartite(25, 25);
    let (_, cliques) = k4.collect(&bipartite);
    assert!(cliques.is_empty());
    verify_cliques(&bipartite, 4, &cliques).expect("empty output is exact");
}

#[test]
fn rounds_are_reported_for_non_trivial_runs() {
    let (graph, _) = gen::clique_listing_workload(100, 4, 0.7, 2, 31);
    let exp = Engine::builder()
        .p(4)
        .experiment_scale()
        .build()
        .expect("valid engine");
    let mut sink = CollectSink::new();
    let report = exp.run(&graph, &mut sink);
    assert!(report.total_rounds() > 0);
    assert_eq!(report.sink.emitted as usize, sink.len());
    // Every phase that reports rounds must be one of the documented phases.
    use distributed_clique_listing::cliquelist::result::phase;
    let known = [
        phase::DECOMPOSITION,
        phase::MEMBERSHIP,
        phase::HEAVY_UPLOAD,
        phase::LIGHT_PROBES,
        phase::ID_ASSIGNMENT,
        phase::RESHUFFLE,
        phase::PARTITION_BROADCAST,
        phase::PART_EXCHANGE,
        phase::LIGHT_LISTING,
        phase::FINAL_BROADCAST,
    ];
    for (name, rounds) in report.rounds.iter() {
        assert!(known.contains(&name), "unknown phase {name}");
        assert!(rounds > 0);
    }
}
