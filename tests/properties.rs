//! Property-based tests for the core invariants:
//!
//! * the distributed listing output always equals the exact enumeration;
//! * orientations cover their graphs with out-degree bounded by the degeneracy;
//! * the expander decomposition is an exact partition with `|E_r| ≤ |E|/6`;
//! * radix part tuples cover every multiset of parts;
//! * random vertex partitions preserve the edge count.
//!
//! The cases are drawn from a deterministic in-tree generator (the build
//! environment has no proptest), so failures reproduce exactly; each property
//! is exercised on a fixed number of sampled inputs spanning the same ranges
//! the original proptest strategies used.

mod common;

use distributed_clique_listing::cliquelist::parts::TupleAssignment;
use distributed_clique_listing::cliquelist::{verify_cliques, Engine};
use distributed_clique_listing::expander::{decompose, DecompositionConfig};
use distributed_clique_listing::graphcore::orientation::{degeneracy_ordering, Orientation};
use distributed_clique_listing::graphcore::partition::VertexPartition;
use distributed_clique_listing::graphcore::{cliques, gen, Edge, EdgeSet, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of sampled cases per property (mirrors `ProptestConfig::with_cases`).
const CASES: u64 = 24;

/// Deterministically samples a random graph in the same distribution the
/// original proptest strategy used: `4 ≤ n < max_n`, edge probability in
/// `[0.01, 0.70)`, seed in `[0, 1000)`.
fn sample_graph(rng: &mut SmallRng, max_n: usize) -> Graph {
    let n = rng.gen_range(4..max_n);
    let prob = f64::from(rng.gen_range(1u32..70)) / 100.0;
    let seed = rng.gen_range(0u64..1_000);
    gen::erdos_renyi(n, prob, seed)
}

fn engine(p: usize, algorithm: &str, seed: u64) -> Engine {
    Engine::builder()
        .p(p)
        .algorithm(algorithm)
        .seed(seed)
        .build()
        .expect("valid engine")
}

#[test]
fn congest_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0001);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let p = rng.gen_range(3usize..6);
        let (_, listed) = engine(p, "general", 0xC11).collect(&graph);
        assert!(
            verify_cliques(&graph, p, &listed).is_ok(),
            "case {case}: K_{p} listing diverged from ground truth"
        );
    }
}

#[test]
fn fast_k4_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0002);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let (_, listed) = engine(4, "fast-k4", 0xC11).collect(&graph);
        assert!(
            verify_cliques(&graph, 4, &listed).is_ok(),
            "case {case}: fast K_4 listing diverged from ground truth"
        );
    }
}

#[test]
fn congested_clique_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0003);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let p = rng.gen_range(3usize..6);
        if graph.num_vertices() >= 2 {
            let (_, listed) = engine(p, "congested-clique", 1).collect(&graph);
            assert!(
                verify_cliques(&graph, p, &listed).is_ok(),
                "case {case}: congested-clique K_{p} listing diverged from ground truth"
            );
        }
    }
}

#[test]
fn degeneracy_orientation_covers_with_bounded_out_degree() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0004);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let ordering = degeneracy_ordering(&graph);
        let orientation = Orientation::from_degeneracy(&graph);
        assert!(orientation.covers_exactly(&graph), "case {case}");
        assert!(
            orientation.max_out_degree() <= ordering.degeneracy,
            "case {case}"
        );
        // Degeneracy is at most the maximum degree.
        assert!(ordering.degeneracy <= graph.max_degree(), "case {case}");
    }
}

#[test]
fn decomposition_is_an_exact_partition() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0005);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let delta = f64::from(rng.gen_range(30u32..80)) / 100.0;
        let d = decompose(&graph, delta, &DecompositionConfig::default(), 1);
        assert!(d.verify(&graph).is_ok(), "case {case}");
        assert!(d.er.len() * 6 <= graph.num_edges().max(1), "case {case}");
        assert_eq!(
            d.em.len() + d.es.len() + d.er.len(),
            graph.num_edges(),
            "case {case}"
        );
    }
}

#[test]
fn listed_cliques_are_cliques() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0006);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 35);
        let (_, listed) = engine(4, "general", 0xC11).collect(&graph);
        for clique in &listed {
            assert_eq!(clique.len(), 4, "case {case}");
            assert!(cliques::is_clique(&graph, clique), "case {case}");
        }
    }
}

#[test]
fn tuple_assignment_covers_every_pair() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0007);
    for case in 0..CASES {
        let k = rng.gen_range(1usize..60);
        let p = rng.gen_range(3usize..7);
        let assignment = TupleAssignment::new(k, p);
        assert!(assignment.num_tuples >= k as u64, "case {case}");
        // Every unordered pair of parts is contained in at least one tuple,
        // so every edge reaches at least one listing node.
        for a in 0..assignment.num_parts {
            for b in a..assignment.num_parts {
                assert!(assignment.tuples_containing(a, b) >= 1, "case {case}");
                assert!(assignment.owners_needing(a, b) >= 1, "case {case}");
            }
        }
    }
}

/// Asserts every structural invariant of the CSR representation that the
/// single-pass subgraph builders promise to preserve:
///
/// * every row (`neighbors(v)`) is strictly increasing — sorted, duplicate
///   free — with in-range endpoints and no self-loops;
/// * adjacency is symmetric: `w ∈ N(v)` iff `v ∈ N(w)` (checked both through
///   `has_edge` and directly on the rows);
/// * the row offsets are consistent (`degree` sums to `2m`, every row slice
///   is addressable — the offsets array is monotone or these slices would
///   panic/overlap);
/// * `edges()` round-trips: it yields exactly `m` lexicographically sorted
///   `u < v` pairs from which `from_edges` rebuilds an identical graph.
fn assert_csr_invariants(g: &Graph, context: &str) {
    let n = g.num_vertices();
    let mut degree_sum = 0usize;
    for v in 0..n as u32 {
        let row = g.neighbors(v);
        assert_eq!(row.len(), g.degree(v), "{context}: degree/row mismatch");
        degree_sum += row.len();
        assert!(
            row.windows(2).all(|w| w[0] < w[1]),
            "{context}: row of {v} not strictly increasing: {row:?}"
        );
        for &w in row {
            assert!((w as usize) < n, "{context}: neighbour {w} out of range");
            assert_ne!(w, v, "{context}: self-loop at {v}");
            assert!(g.has_edge(v, w), "{context}: has_edge({v},{w}) false");
            assert!(g.has_edge(w, v), "{context}: has_edge not symmetric");
            assert!(
                g.neighbors(w).binary_search(&v).is_ok(),
                "{context}: adjacency rows not symmetric for {{{v},{w}}}"
            );
        }
    }
    assert_eq!(
        degree_sum,
        2 * g.num_edges(),
        "{context}: offsets inconsistent with num_edges"
    );
    let edges: Vec<(u32, u32)> = g.edges().collect();
    assert_eq!(edges.len(), g.num_edges(), "{context}: edges() count");
    assert!(
        edges.iter().all(|&(u, v)| u < v),
        "{context}: edges() emitted a non-canonical pair"
    );
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "{context}: edges() not lexicographically sorted"
    );
    let rebuilt = Graph::from_edges(n, &edges).expect("round-trip build");
    assert_eq!(&rebuilt, g, "{context}: edges() round-trip diverged");
}

/// Samples a random subset of a graph's edges.
fn sample_edge_subset(rng: &mut SmallRng, g: &Graph, keep_prob: f64) -> EdgeSet {
    g.edges()
        .filter(|_| rng.gen_range(0u32..100) < (keep_prob * 100.0) as u32)
        .map(|(u, v)| Edge::new(u, v))
        .collect()
}

#[test]
fn csr_invariants_survive_subgraph_composition_chains() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0009);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        assert_csr_invariants(&graph, &format!("case {case}: base"));

        // edge_subgraph and without_edges split the edge set exactly.
        let keep = sample_edge_subset(&mut rng, &graph, 0.5);
        let kept = graph.edge_subgraph(&keep);
        let dropped = graph.without_edges(&keep);
        assert_csr_invariants(&kept, &format!("case {case}: edge_subgraph"));
        assert_csr_invariants(&dropped, &format!("case {case}: without_edges"));
        assert_eq!(
            kept.num_edges() + dropped.num_edges(),
            graph.num_edges(),
            "case {case}: edge_subgraph/without_edges must partition the edges"
        );

        // Composition chain: a vertex-induced cut of an edge cut, then a
        // second edge removal — the shapes the LIST pipeline produces when it
        // peels cluster edges and bad edges off the remaining graph.
        let n = graph.num_vertices();
        let vertices: Vec<u32> = (0..n as u32)
            .filter(|_| rng.gen_range(0u32..100) < 60)
            .collect();
        let induced = kept.induced_keep_ids(&vertices);
        assert_csr_invariants(&induced, &format!("case {case}: induced∘subgraph"));
        assert_eq!(induced.num_vertices(), n, "case {case}: ids must be kept");
        let peel = sample_edge_subset(&mut rng, &induced, 0.3);
        let peeled = induced.without_edges(&peel);
        assert_csr_invariants(&peeled, &format!("case {case}: without∘induced∘subgraph"));
        assert_eq!(
            peeled.num_edges() + peel.len(),
            induced.num_edges(),
            "case {case}: peeling removed a wrong edge count"
        );

        // Every edge of every composed graph existed in the original.
        for (u, v) in peeled.edges() {
            assert!(graph.has_edge(u, v), "case {case}: phantom edge {u}-{v}");
        }
    }
}

#[test]
fn clique_index_invariants_hold_on_random_graphs() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_000A);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let index = cliques::CliqueIndex::build(&graph);
        common::assert_index_invariants(&graph, &index, &format!("case {case}"));
    }
    // And on a graph dense enough to populate the adjacency bitsets (the
    // sampled graphs above typically stay below the degree threshold).
    let dense = gen::erdos_renyi(140, 0.6, 77);
    assert!(
        dense.max_degree() >= 64,
        "workload must reach the threshold"
    );
    let index = cliques::CliqueIndex::build(&dense);
    assert!(
        (0..140u32).any(|v| index.bitset_row(v).is_some()),
        "dense case must actually exercise the bitset audit"
    );
    common::assert_index_invariants(&dense, &index, "dense bitset case");
}

#[test]
fn vertex_partitions_preserve_edge_counts() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0008);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let parts = rng.gen_range(2u32..8);
        let seed = rng.gen_range(0u64..100);
        let partition = VertexPartition::random(graph.num_vertices(), parts, seed);
        let counts = partition.pairwise_edge_counts(&graph);
        let total: usize = counts.iter().flat_map(|row| row.iter()).sum();
        assert_eq!(total, graph.num_edges(), "case {case}");
    }
}
