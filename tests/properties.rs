//! Property-based tests for the core invariants:
//!
//! * the distributed listing output always equals the exact enumeration;
//! * orientations cover their graphs with out-degree bounded by the degeneracy;
//! * the expander decomposition is an exact partition with `|E_r| ≤ |E|/6`;
//! * radix part tuples cover every multiset of parts;
//! * random vertex partitions preserve the edge count.
//!
//! The cases are drawn from a deterministic in-tree generator (the build
//! environment has no proptest), so failures reproduce exactly; each property
//! is exercised on a fixed number of sampled inputs spanning the same ranges
//! the original proptest strategies used.

use distributed_clique_listing::cliquelist::parts::TupleAssignment;
use distributed_clique_listing::cliquelist::{verify_cliques, Engine};
use distributed_clique_listing::expander::{decompose, DecompositionConfig};
use distributed_clique_listing::graphcore::orientation::{degeneracy_ordering, Orientation};
use distributed_clique_listing::graphcore::partition::VertexPartition;
use distributed_clique_listing::graphcore::{cliques, gen, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of sampled cases per property (mirrors `ProptestConfig::with_cases`).
const CASES: u64 = 24;

/// Deterministically samples a random graph in the same distribution the
/// original proptest strategy used: `4 ≤ n < max_n`, edge probability in
/// `[0.01, 0.70)`, seed in `[0, 1000)`.
fn sample_graph(rng: &mut SmallRng, max_n: usize) -> Graph {
    let n = rng.gen_range(4..max_n);
    let prob = f64::from(rng.gen_range(1u32..70)) / 100.0;
    let seed = rng.gen_range(0u64..1_000);
    gen::erdos_renyi(n, prob, seed)
}

fn engine(p: usize, algorithm: &str, seed: u64) -> Engine {
    Engine::builder()
        .p(p)
        .algorithm(algorithm)
        .seed(seed)
        .build()
        .expect("valid engine")
}

#[test]
fn congest_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0001);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let p = rng.gen_range(3usize..6);
        let (_, listed) = engine(p, "general", 0xC11).collect(&graph);
        assert!(
            verify_cliques(&graph, p, &listed).is_ok(),
            "case {case}: K_{p} listing diverged from ground truth"
        );
    }
}

#[test]
fn fast_k4_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0002);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let (_, listed) = engine(4, "fast-k4", 0xC11).collect(&graph);
        assert!(
            verify_cliques(&graph, 4, &listed).is_ok(),
            "case {case}: fast K_4 listing diverged from ground truth"
        );
    }
}

#[test]
fn congested_clique_listing_is_always_exact() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0003);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 40);
        let p = rng.gen_range(3usize..6);
        if graph.num_vertices() >= 2 {
            let (_, listed) = engine(p, "congested-clique", 1).collect(&graph);
            assert!(
                verify_cliques(&graph, p, &listed).is_ok(),
                "case {case}: congested-clique K_{p} listing diverged from ground truth"
            );
        }
    }
}

#[test]
fn degeneracy_orientation_covers_with_bounded_out_degree() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0004);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let ordering = degeneracy_ordering(&graph);
        let orientation = Orientation::from_degeneracy(&graph);
        assert!(orientation.covers_exactly(&graph), "case {case}");
        assert!(
            orientation.max_out_degree() <= ordering.degeneracy,
            "case {case}"
        );
        // Degeneracy is at most the maximum degree.
        assert!(ordering.degeneracy <= graph.max_degree(), "case {case}");
    }
}

#[test]
fn decomposition_is_an_exact_partition() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0005);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let delta = f64::from(rng.gen_range(30u32..80)) / 100.0;
        let d = decompose(&graph, delta, &DecompositionConfig::default(), 1);
        assert!(d.verify(&graph).is_ok(), "case {case}");
        assert!(d.er.len() * 6 <= graph.num_edges().max(1), "case {case}");
        assert_eq!(
            d.em.len() + d.es.len() + d.er.len(),
            graph.num_edges(),
            "case {case}"
        );
    }
}

#[test]
fn listed_cliques_are_cliques() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0006);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 35);
        let (_, listed) = engine(4, "general", 0xC11).collect(&graph);
        for clique in &listed {
            assert_eq!(clique.len(), 4, "case {case}");
            assert!(cliques::is_clique(&graph, clique), "case {case}");
        }
    }
}

#[test]
fn tuple_assignment_covers_every_pair() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0007);
    for case in 0..CASES {
        let k = rng.gen_range(1usize..60);
        let p = rng.gen_range(3usize..7);
        let assignment = TupleAssignment::new(k, p);
        assert!(assignment.num_tuples >= k as u64, "case {case}");
        // Every unordered pair of parts is contained in at least one tuple,
        // so every edge reaches at least one listing node.
        for a in 0..assignment.num_parts {
            for b in a..assignment.num_parts {
                assert!(assignment.tuples_containing(a, b) >= 1, "case {case}");
                assert!(assignment.owners_needing(a, b) >= 1, "case {case}");
            }
        }
    }
}

#[test]
fn vertex_partitions_preserve_edge_counts() {
    let mut rng = SmallRng::seed_from_u64(0xC0DE_0008);
    for case in 0..CASES {
        let graph = sample_graph(&mut rng, 60);
        let parts = rng.gen_range(2u32..8);
        let seed = rng.gen_range(0u64..100);
        let partition = VertexPartition::random(graph.num_vertices(), parts, seed);
        let counts = partition.pairwise_edge_counts(&graph);
        let total: usize = counts.iter().flat_map(|row| row.iter()).sum();
        assert_eq!(total, graph.num_edges(), "case {case}");
    }
}
