//! Property-based tests (proptest) for the core invariants:
//!
//! * the distributed listing output always equals the exact enumeration;
//! * orientations cover their graphs with out-degree bounded by the degeneracy;
//! * the expander decomposition is an exact partition with `|E_r| ≤ |E|/6`;
//! * radix part tuples cover every multiset of parts;
//! * random vertex partitions preserve the edge count.

use distributed_clique_listing::cliquelist::parts::TupleAssignment;
use distributed_clique_listing::cliquelist::{
    congested_clique_list, list_kp, verify_against_ground_truth, ListingConfig, Variant,
};
use distributed_clique_listing::expander::{decompose, DecompositionConfig};
use distributed_clique_listing::graphcore::orientation::{degeneracy_ordering, Orientation};
use distributed_clique_listing::graphcore::partition::VertexPartition;
use distributed_clique_listing::graphcore::{cliques, gen, Graph};
use proptest::prelude::*;

/// Strategy: a random graph described by (n, edge probability numerator, seed).
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..max_n, 1u32..70, 0u64..1_000).prop_map(|(n, prob, seed)| {
        gen::erdos_renyi(n, f64::from(prob) / 100.0, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn congest_listing_is_always_exact(graph in graph_strategy(40), p in 3usize..6) {
        let result = list_kp(&graph, &ListingConfig::for_p(p));
        prop_assert!(verify_against_ground_truth(&graph, p, &result).is_ok());
    }

    #[test]
    fn fast_k4_listing_is_always_exact(graph in graph_strategy(40)) {
        let result = list_kp(&graph, &ListingConfig { variant: Variant::FastK4, ..ListingConfig::for_p(4) });
        prop_assert!(verify_against_ground_truth(&graph, 4, &result).is_ok());
    }

    #[test]
    fn congested_clique_listing_is_always_exact(graph in graph_strategy(40), p in 3usize..6) {
        if graph.num_vertices() >= 2 {
            let report = congested_clique_list(&graph, p, 1);
            prop_assert!(verify_against_ground_truth(&graph, p, &report.result).is_ok());
        }
    }

    #[test]
    fn degeneracy_orientation_covers_with_bounded_out_degree(graph in graph_strategy(60)) {
        let ordering = degeneracy_ordering(&graph);
        let orientation = Orientation::from_degeneracy(&graph);
        prop_assert!(orientation.covers_exactly(&graph));
        prop_assert!(orientation.max_out_degree() <= ordering.degeneracy);
        // Degeneracy is at most the maximum degree.
        prop_assert!(ordering.degeneracy <= graph.max_degree());
    }

    #[test]
    fn decomposition_is_an_exact_partition(graph in graph_strategy(60), delta_pct in 30u32..80) {
        let delta = f64::from(delta_pct) / 100.0;
        let d = decompose(&graph, delta, &DecompositionConfig::default(), 1);
        prop_assert!(d.verify(&graph).is_ok());
        prop_assert!(d.er.len() * 6 <= graph.num_edges().max(1));
        prop_assert_eq!(d.em.len() + d.es.len() + d.er.len(), graph.num_edges());
    }

    #[test]
    fn listed_cliques_are_cliques(graph in graph_strategy(35)) {
        let result = list_kp(&graph, &ListingConfig::for_p(4));
        for clique in &result.cliques {
            prop_assert_eq!(clique.len(), 4);
            prop_assert!(cliques::is_clique(&graph, clique));
        }
    }

    #[test]
    fn tuple_assignment_covers_every_pair(k in 1usize..60, p in 3usize..7) {
        let assignment = TupleAssignment::new(k, p);
        prop_assert!(assignment.num_tuples >= k as u64);
        // Every unordered pair of parts is contained in at least one tuple,
        // so every edge reaches at least one listing node.
        for a in 0..assignment.num_parts {
            for b in a..assignment.num_parts {
                prop_assert!(assignment.tuples_containing(a, b) >= 1);
                prop_assert!(assignment.owners_needing(a, b) >= 1);
            }
        }
    }

    #[test]
    fn vertex_partitions_preserve_edge_counts(graph in graph_strategy(60), parts in 2u32..8, seed in 0u64..100) {
        let partition = VertexPartition::random(graph.num_vertices(), parts, seed);
        let counts = partition.pairwise_edge_counts(&graph);
        let total: usize = counts.iter().flat_map(|row| row.iter()).sum();
        prop_assert_eq!(total, graph.num_edges());
    }
}
