//! Integration tests for the CONGEST / CONGESTED CLIQUE simulator: real
//! message-level executions whose round counts must match the analytic
//! accounting used by the listing pipeline.

use distributed_clique_listing::cliquelist::baselines::{
    naive_broadcast_rounds, NaiveBroadcastProgram,
};
use distributed_clique_listing::congest::{
    CongestedClique, Context, Network, NetworkConfig, NodeId, NodeProgram, Status, Topology,
};
use distributed_clique_listing::graphcore::{cliques, gen};
use std::collections::HashSet;

/// A program in which every node floods its identifier; at quiescence every
/// node in a connected component knows the component's minimum identifier.
struct LeaderElect {
    best: u32,
    announced: Option<u32>,
}

impl NodeProgram for LeaderElect {
    type Message = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        self.best = ctx.id().index() as u32;
        ctx.broadcast(self.best);
        self.announced = Some(self.best);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u32>, incoming: &[(NodeId, u32)]) -> Status {
        let mut improved = false;
        for &(_, candidate) in incoming {
            if candidate < self.best {
                self.best = candidate;
                improved = true;
            }
        }
        if improved && self.announced != Some(self.best) {
            ctx.broadcast(self.best);
            self.announced = Some(self.best);
            Status::Running
        } else {
            Status::Done
        }
    }
}

#[test]
fn leader_election_converges_in_diameter_rounds() {
    let n = 64;
    let topo = Topology::path(n);
    let mut net = Network::new(topo, NetworkConfig::default(), |_| LeaderElect {
        best: u32::MAX,
        announced: None,
    });
    let report = net.run(10 * n as u64);
    assert!(report.terminated);
    assert!(net.programs().all(|(_, p)| p.best == 0));
    // Information travels one hop per round on a path.
    assert!(report.simulated_rounds >= (n - 1) as u64);
    assert!(report.simulated_rounds <= (n as u64) + 5);
}

#[test]
fn naive_listing_on_the_simulator_matches_the_analytic_round_count() {
    let graph = gen::erdos_renyi(30, 0.3, 9);
    let topo = Topology::from_edge_list(graph.num_vertices(), graph.edges());
    let mut net = Network::new(topo, NetworkConfig::default(), |_| {
        NaiveBroadcastProgram::new(4)
    });
    let report = net.run(100_000);
    assert!(report.terminated);
    let delta = naive_broadcast_rounds(&graph);
    assert!(
        report.simulated_rounds >= delta && report.simulated_rounds <= delta + 3,
        "simulated {} vs analytic {}",
        report.simulated_rounds,
        delta
    );
    // The union of node outputs equals the ground truth.
    let mut union: HashSet<Vec<u32>> = HashSet::new();
    for (_, p) in net.programs() {
        union.extend(p.listed.iter().cloned());
    }
    let truth: HashSet<Vec<u32>> = cliques::list_cliques(&graph, 4).into_iter().collect();
    assert_eq!(union, truth);
}

#[test]
fn congested_clique_all_to_all_costs_one_round_per_word() {
    /// Every node sends `k` words to every other node.
    struct AllToAll {
        k: u64,
        received: u64,
    }
    impl NodeProgram for AllToAll {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.k {
                ctx.broadcast(i);
            }
        }
        fn on_round(&mut self, _ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
            self.received += incoming.len() as u64;
            Status::Done
        }
    }

    let n = 16;
    let k = 5;
    let cc = CongestedClique::new(n);
    let mut net = cc.network(NetworkConfig::default(), |_| AllToAll { k, received: 0 });
    let report = net.run(1000);
    assert!(report.terminated);
    // k words per ordered pair, bandwidth one word per pair per round.
    assert!(report.simulated_rounds >= k);
    assert!(report.simulated_rounds <= k + 2);
    assert!(net
        .programs()
        .all(|(_, p)| p.received == k * (n as u64 - 1)));
    // The analytic helper agrees.
    assert_eq!(cc.broadcast_rounds(k), k);
}

#[test]
fn bandwidth_scaling_shortens_executions_proportionally() {
    /// Every node submits its entire neighbourhood to every neighbour in the
    /// first round and lets the transport pace the delivery — so the round
    /// count is governed purely by the per-edge bandwidth.
    struct BulkUpload;
    impl NodeProgram for BulkUpload {
        type Message = u32;
        fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
            let ids: Vec<u32> = ctx.neighbors().iter().map(|v| v.index() as u32).collect();
            for &w in &ids {
                ctx.broadcast(w);
            }
        }
        fn on_round(&mut self, _ctx: &mut Context<'_, u32>, _incoming: &[(NodeId, u32)]) -> Status {
            Status::Done
        }
    }

    let graph = gen::erdos_renyi(24, 0.4, 4);
    let run = |bandwidth: u32| {
        let topo = Topology::from_edge_list(graph.num_vertices(), graph.edges());
        let mut net = Network::new(
            topo,
            NetworkConfig::default().with_bandwidth(bandwidth),
            |_| BulkUpload,
        );
        net.run(100_000).simulated_rounds
    };
    let slow = run(1);
    let fast = run(4);
    assert!(slow >= graph.max_degree() as u64);
    assert!(
        fast <= slow / 2,
        "quadrupling the bandwidth should at least halve the rounds ({slow} -> {fast})"
    );
}
