//! The churn differential battery: "incremental must equal recompute",
//! enforced end to end.
//!
//! Each chain takes a workload graph (Erdős–Rényi / planted cliques / R-MAT),
//! applies a small batch (chosen to stay under the rebuild threshold — the
//! incremental strategy) and then a large one (over the threshold — the
//! rebuild strategy), and holds every derived snapshot to three differential
//! contracts, for every clique size `p ∈ {3,4,5}` and every thread grant
//! `{Off, 1, 2, 8}`:
//!
//! (a) **snapshot bytes**: the derived snapshot — CSR graph, degeneracy
//!     ordering, oriented DAG, adjacency bitsets, shard plans, content
//!     identity — equals a from-scratch `GraphSnapshot` build of the mutated
//!     edge list (`PartialEq` over the full state), and its index passes the
//!     shared structural audit (`common::assert_index_invariants`);
//! (b) **delta**: `delta_cliques` equals the set difference of the full
//!     listings on the two snapshots, byte-identical at every thread grant;
//! (c) **queries**: `QueryService` payloads on the derived snapshot are
//!     byte-identical to a service over a cold rebuild, at every grant, with
//!     the cache keyed by the new content identity.
//!
//! A final regression pins the no-op guarantee: ineffective churn preserves
//! the content identity, so previously cached results keep hitting.

mod common;

use distributed_clique_listing::cliquelist::Parallelism;
use distributed_clique_listing::graphcore::{cliques, gen, Clique, EdgeBatch, Graph};
use distributed_clique_listing::query::{
    delta_cliques, ChurnStrategy, GraphSnapshot, QueryBuilder, QueryService,
};

const RMAT_PROBS: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);
const PS: [usize; 3] = [3, 4, 5];
const SEEDS: [u64; 2] = [1, 2];

/// The thread grants every differential assertion runs under. Without the
/// `parallel` feature each resolves to one worker — the assertions still
/// compare against the same sequential baseline.
fn grants() -> [Parallelism; 4] {
    [
        Parallelism::Off,
        Parallelism::Threads(1),
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ]
}

/// The three workload families of the battery.
fn workloads(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("er", gen::erdos_renyi(48, 0.18, seed)),
        ("planted", gen::planted_cliques(60, 0.05, 2, 6, seed).0),
        ("rmat", gen::rmat(6, 4, RMAT_PROBS, seed)),
    ]
}

/// A small, deterministic batch: a handful of deletions spread over the edge
/// list plus a handful of insertions drawn from a perturbation generator.
/// Sized to stay well under `REBUILD_CHURN_PPM` on every workload.
fn small_batch(graph: &Graph, seed: u64) -> EdgeBatch {
    let deletes: Vec<(u32, u32)> = graph.edges().step_by(17).take(6).collect();
    let inserts: Vec<(u32, u32)> = gen::erdos_renyi(graph.num_vertices(), 0.1, seed ^ 0xABC)
        .edges()
        .filter(|&(u, v)| !graph.has_edge(u, v))
        .take(6)
        .collect();
    EdgeBatch::new(&inserts, &deletes).expect("disjoint by construction")
}

/// A large batch: every third edge deleted (≈ 333 333 ppm churn, over the
/// rebuild threshold on any graph).
fn large_batch(graph: &Graph) -> EdgeBatch {
    let deletes: Vec<(u32, u32)> = graph.edges().step_by(3).collect();
    EdgeBatch::new(&[], &deletes).expect("deletes only")
}

/// Contract (b)'s reference: the set difference of the full listings.
fn reference_delta(old: &Graph, new: &Graph, p: usize) -> (Vec<Clique>, Vec<Clique>) {
    let before = cliques::list_cliques(old, p);
    let after = cliques::list_cliques(new, p);
    let created = after
        .iter()
        .filter(|c| !before.contains(c))
        .cloned()
        .collect();
    let destroyed = before
        .iter()
        .filter(|c| !after.contains(c))
        .cloned()
        .collect();
    (created, destroyed)
}

/// Contract (c)'s probe set: one of each query kind the service answers.
fn probe_queries(
    snapshot: &GraphSnapshot,
    p: usize,
) -> Vec<distributed_clique_listing::query::Query> {
    let builders = [
        QueryBuilder::new().p(p).count(),
        QueryBuilder::new().p(p).first(10),
        QueryBuilder::new().p(p).containing_vertex(3),
        QueryBuilder::new().p(p).exists(),
    ];
    builders
        .into_iter()
        .map(|b| b.build(snapshot).expect("prepared p"))
        .collect()
}

#[test]
fn churn_differential_battery() {
    let mut cells = 0usize;
    let mut strategies_seen = Vec::new();
    for seed in SEEDS {
        for (name, graph) in workloads(seed) {
            for p in PS {
                let context = format!("{name} seed {seed} p {p}");
                let old = GraphSnapshot::build(graph.clone());

                // Two-step chain: small batch (incremental), then a large
                // one on the result (rebuild).
                let batch1 = small_batch(&graph, seed);
                let (mid, report1) = old.apply_batch(&batch1).expect("in range");
                assert_eq!(
                    report1.strategy,
                    ChurnStrategy::Incremental,
                    "{context}: small batch must take the incremental path \
                     (churn {} ppm)",
                    report1.churn_ppm
                );
                let batch2 = large_batch(mid.graph());
                let (new, report2) = mid.apply_batch(&batch2).expect("in range");
                assert_eq!(
                    report2.strategy,
                    ChurnStrategy::Rebuild,
                    "{context}: large batch must take the rebuild path \
                     (churn {} ppm)",
                    report2.churn_ppm
                );
                strategies_seen.push(report1.strategy);
                strategies_seen.push(report2.strategy);

                // (a) Snapshot bytes equal a from-scratch build, and the
                // patched index passes the shared structural audit.
                for (label, derived) in [("incremental", &mid), ("rebuild", &new)] {
                    let scratch = GraphSnapshot::build(derived.graph().clone());
                    assert_eq!(
                        derived, &scratch,
                        "{context}: {label} snapshot diverged from scratch"
                    );
                    assert_eq!(derived.id(), scratch.id(), "{context}: {label} id");
                    common::assert_index_invariants(
                        derived.graph(),
                        derived.index(),
                        &format!("{context}: {label}"),
                    );
                }
                assert_ne!(old.id(), mid.id(), "{context}: batch1 must change the id");
                assert_ne!(mid.id(), new.id(), "{context}: batch2 must change the id");

                // (b)+(c) at every thread grant.
                let baseline_delta1 = delta_cliques(&old, &mid, p, Parallelism::Off).unwrap();
                let baseline_delta2 = delta_cliques(&mid, &new, p, Parallelism::Off).unwrap();
                let (created1, destroyed1) = reference_delta(old.graph(), mid.graph(), p);
                let (created2, destroyed2) = reference_delta(mid.graph(), new.graph(), p);
                let queries = probe_queries(&new, p);
                let cold =
                    QueryService::new(GraphSnapshot::build(new.graph().clone()).into_shared());
                let cold_payloads: Vec<String> = queries
                    .iter()
                    .map(|q| cold.execute(q).expect("valid").to_json())
                    .collect();
                for grant in grants() {
                    cells += 1;
                    let cell = format!("{context} grant {grant:?}");

                    // (b) delta == full-listing set difference, and equal to
                    // the sequential baseline byte for byte.
                    let delta1 = delta_cliques(&old, &mid, p, grant).unwrap();
                    assert_eq!(delta1.created, created1, "{cell}: created (batch1)");
                    assert_eq!(delta1.destroyed, destroyed1, "{cell}: destroyed (batch1)");
                    assert_eq!(delta1, baseline_delta1, "{cell}: grant changed the delta");
                    let delta2 = delta_cliques(&mid, &new, p, grant).unwrap();
                    assert_eq!(delta2.created, created2, "{cell}: created (batch2)");
                    assert_eq!(delta2.destroyed, destroyed2, "{cell}: destroyed (batch2)");
                    assert_eq!(delta2, baseline_delta2, "{cell}: grant changed the delta");

                    // (c) query payloads on the derived snapshot match the
                    // cold-rebuild service, and the cache keys on the new id.
                    let service = QueryService::with_parallelism(new.clone().into_shared(), grant);
                    for (query, cold_payload) in queries.iter().zip(&cold_payloads) {
                        let first = service.execute(query).expect("valid");
                        assert!(!first.report.cache_hit, "{cell}: cache must start cold");
                        assert_eq!(
                            first.to_json(),
                            *cold_payload,
                            "{cell}: payload diverged from cold rebuild"
                        );
                        let second = service.execute(query).expect("valid");
                        assert!(
                            second.report.cache_hit,
                            "{cell}: repeat must hit the cache keyed by the new id"
                        );
                        assert_eq!(second.to_json(), *cold_payload, "{cell}: cached payload");
                    }
                }
            }
        }
    }
    assert!(cells >= 30, "battery must cover ≥ 30 cells, got {cells}");
    assert!(
        strategies_seen.contains(&ChurnStrategy::Incremental)
            && strategies_seen.contains(&ChurnStrategy::Rebuild),
        "battery must exercise both non-trivial strategies"
    );
}

#[test]
fn noop_churn_preserves_identity_and_cache() {
    let graph = gen::erdos_renyi(40, 0.2, 5);
    let old = GraphSnapshot::build(graph.clone()).into_shared();
    let service = QueryService::new(old.clone());
    let query = QueryBuilder::new().p(3).count().build(&old).unwrap();
    assert!(!service.execute(&query).unwrap().report.cache_hit);

    // An empty batch and a fully ineffective batch both derive snapshots
    // with the *same* content identity…
    let (same_empty, report) = old.apply_batch(&EdgeBatch::empty()).unwrap();
    assert_eq!(report.strategy, ChurnStrategy::Noop);
    assert_eq!(same_empty.id(), old.id());
    let existing: Vec<(u32, u32)> = graph.edges().take(3).collect();
    let missing: Vec<(u32, u32)> = (0..40u32)
        .flat_map(|u| ((u + 1)..40).map(move |v| (u, v)))
        .filter(|&(u, v)| !graph.has_edge(u, v))
        .take(3)
        .collect();
    let ineffective = EdgeBatch::new(&existing, &missing).unwrap();
    assert!(!ineffective.is_empty());
    let (same, report) = old.apply_batch(&ineffective).unwrap();
    assert_eq!(report.strategy, ChurnStrategy::Noop);
    assert_eq!(report.num_changes(), 0);
    assert_eq!(same.id(), old.id(), "ineffective churn must keep the id");
    assert_eq!(&same, &*old);

    // …so a query built against the derived snapshot hits the cache entry
    // the pre-churn query populated: cache reuse across no-op churn.
    let requery = QueryBuilder::new().p(3).count().build(&same).unwrap();
    let response = service.execute(&requery).unwrap();
    assert!(
        response.report.cache_hit,
        "no-op churn must not invalidate cached results"
    );

    // An effective batch, by contrast, changes the id and the old service
    // rejects queries built against the derived snapshot.
    let effective = EdgeBatch::new(&[], &[graph.edges().next().unwrap()]).unwrap();
    let (changed, _) = old.apply_batch(&effective).unwrap();
    assert_ne!(changed.id(), old.id());
    let stale = QueryBuilder::new().p(3).count().build(&changed).unwrap();
    assert!(
        service.execute(&stale).is_err(),
        "a changed identity must not silently serve stale cache entries"
    );
}
