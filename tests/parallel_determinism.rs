//! Regression test for the `parallel` feature: the multi-threaded round
//! executor must be *observationally identical* to the sequential one —
//! identical traces, identical round reports (counts and traffic metrics) and
//! identical listings — for any thread count.
//!
//! Run with `cargo test --features parallel --test parallel_determinism`.

#![cfg(feature = "parallel")]

use distributed_clique_listing::cliquelist::baselines::NaiveBroadcastProgram;
use distributed_clique_listing::congest::{
    Context, MemorySink, Network, NetworkConfig, NodeId, NodeProgram, RoundReport, Status,
    Topology, TraceEvent,
};
use distributed_clique_listing::graphcore::gen;
use std::collections::HashSet;
use std::sync::Arc;

/// Runs `factory`-built programs over `topology` with the given executor and
/// returns the trace, the report and the final programs.
fn execute<P>(
    topology: Topology,
    seed: u64,
    max_rounds: u64,
    factory: impl FnMut(NodeId) -> P,
    threads: Option<usize>,
) -> (Vec<TraceEvent>, RoundReport, Vec<P>)
where
    P: NodeProgram + Send,
    P::Message: Send + Sync,
{
    let sink = Arc::new(MemorySink::new());
    let mut net = Network::new(topology, NetworkConfig::default().with_seed(seed), factory);
    net.set_trace_sink(sink.clone());
    let report = match threads {
        None => net.run(max_rounds),
        Some(t) => net.run_parallel_with_threads(t, max_rounds),
    };
    (sink.events(), report, net.into_programs())
}

fn congest_topology(n: usize, p: f64, seed: u64) -> Topology {
    let graph = gen::erdos_renyi(n, p, seed);
    Topology::from_edge_list(graph.num_vertices(), graph.edges())
}

#[test]
fn parallel_naive_listing_matches_sequential_exactly() {
    let n = 40;
    for topo_seed in [3u64, 11] {
        let topology = congest_topology(n, 0.25, topo_seed);
        let (seq_trace, seq_report, seq_programs) = execute(
            topology.clone(),
            topo_seed,
            10_000,
            |_| NaiveBroadcastProgram::new(3),
            None,
        );
        for threads in [1usize, 2, 4, 7] {
            let (par_trace, par_report, par_programs) = execute(
                topology.clone(),
                topo_seed,
                10_000,
                |_| NaiveBroadcastProgram::new(3),
                Some(threads),
            );
            assert_eq!(
                seq_trace, par_trace,
                "trace diverged with {threads} threads (seed {topo_seed})"
            );
            assert_eq!(
                seq_report, par_report,
                "round report diverged with {threads} threads (seed {topo_seed})"
            );
            let seq_listing: Vec<&Vec<u32>> = seq_programs.iter().flat_map(|p| &p.listed).collect();
            let par_listing: Vec<&Vec<u32>> = par_programs.iter().flat_map(|p| &p.listed).collect();
            assert_eq!(
                seq_listing, par_listing,
                "listings diverged with {threads} threads (seed {topo_seed})"
            );
        }
        assert!(seq_report.terminated);
        let union: HashSet<&Vec<u32>> = seq_programs.iter().flat_map(|p| &p.listed).collect();
        assert!(!union.is_empty(), "workload listed no triangles; weak test");
    }
}

/// A randomized gossip program: every round each node asks its RNG for a
/// neighbour and forwards the largest value seen so far. Exercises per-node
/// RNG streams under the parallel executor — any cross-thread perturbation of
/// randomness would change the message pattern and with it trace and metrics.
struct RandomGossip {
    best: u64,
    rounds_left: u32,
}

impl NodeProgram for RandomGossip {
    type Message = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        self.best = ctx.id().index() as u64;
        let degree = ctx.degree();
        if degree > 0 {
            let pick = ctx.rng().below(degree as u64) as usize;
            let to = ctx.neighbors()[pick];
            ctx.send(to, self.best);
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
        for &(_, v) in incoming {
            self.best = self.best.max(v);
        }
        if self.rounds_left == 0 {
            return Status::Done;
        }
        self.rounds_left -= 1;
        let degree = ctx.degree();
        if degree > 0 {
            let pick = ctx.rng().below(degree as u64) as usize;
            let to = ctx.neighbors()[pick];
            ctx.send(to, self.best);
        }
        Status::Running
    }
}

#[test]
fn parallel_rng_streams_match_sequential() {
    let topology = congest_topology(64, 0.15, 17);
    let factory = |_| RandomGossip {
        best: 0,
        rounds_left: 25,
    };
    let (seq_trace, seq_report, seq_programs) = execute(topology.clone(), 99, 1_000, factory, None);
    for threads in [2usize, 5] {
        let (par_trace, par_report, par_programs) =
            execute(topology.clone(), 99, 1_000, factory, Some(threads));
        assert_eq!(seq_trace, par_trace, "{threads} threads: trace diverged");
        assert_eq!(seq_report, par_report, "{threads} threads: report diverged");
        let seq_best: Vec<u64> = seq_programs.iter().map(|p| p.best).collect();
        let par_best: Vec<u64> = par_programs.iter().map(|p| p.best).collect();
        assert_eq!(seq_best, par_best, "{threads} threads: state diverged");
    }
    assert!(seq_report.metrics.messages_sent > 0);
}
