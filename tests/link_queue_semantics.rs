//! Pins the flat (link-indexed) queue executor to the reference semantics of
//! the former `BTreeMap<(src, dst), VecDeque>` link queues.
//!
//! A deterministic chatter program floods every link with multi-word
//! messages for several rounds while every node records its full inbox
//! sequence. The same schedule is replayed against an in-test reference
//! model that implements the original per-link delivery rules — `(src, dst)`
//! lexicographic link order, FIFO per link, per-round word budget, and the
//! over-wide-message rule (a message wider than the whole bandwidth goes
//! through alone on a fresh budget) — and the executor must agree on every
//! inbox, on the round count, and on quiescence.

use distributed_clique_listing::congest::{
    Context, Network, NetworkConfig, NodeId, NodeProgram, Status, Topology,
};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Rounds during which every node transmits.
const SEND_ROUNDS: u64 = 4;

/// The payload node `src` sends to `dst` in `round`.
fn payload(src: u32, dst: u32, round: u64) -> u64 {
    u64::from(src) * 1_000_000 + round * 1_000 + u64::from(dst)
}

/// The wire width of that payload: cycles through 1..=3 words so queues back
/// up and the wide-message rule fires under bandwidth 1 and 2.
fn width(src: u32, dst: u32, round: u64) -> u32 {
    1 + ((src as u64 + dst as u64 + round) % 3) as u32
}

/// Sends to every neighbour each round and records every delivery.
struct Chatter {
    log: Vec<(u64, u32, u64)>,
}

impl NodeProgram for Chatter {
    type Message = u64;

    fn on_round(&mut self, ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
        let round = ctx.round();
        for &(src, msg) in incoming {
            self.log.push((round, src.index() as u32, msg));
        }
        let me = ctx.id().index() as u32;
        if round <= SEND_ROUNDS {
            let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
            for dst in neighbors {
                ctx.send(dst, payload(me, dst.index() as u32, round));
            }
            Status::Running
        } else {
            Status::Done
        }
    }

    fn message_words(&self, message: &u64) -> u32 {
        // Recover (src, dst, round) from the payload to keep widths pure.
        let src = (message / 1_000_000) as u32;
        let round = (message / 1_000) % 1_000;
        let dst = (message % 1_000) as u32;
        width(src, dst, round)
    }
}

/// One node's inbox log: `(round, source, payload)` in delivery order.
type InboxLog = Vec<(u64, u32, u64)>;

/// The reference executor: BTreeMap link queues, original delivery rules.
/// Returns the per-node inbox logs and the number of simulated rounds.
fn reference_run(topology: &Topology, bandwidth: u64) -> (Vec<InboxLog>, u64) {
    let n = topology.num_nodes();
    let mut queues: BTreeMap<(u32, u32), VecDeque<(u64, u32)>> = BTreeMap::new();
    let mut logs: Vec<InboxLog> = vec![Vec::new(); n];
    let mut round = 0u64;
    loop {
        let done_sending = round >= SEND_ROUNDS;
        if done_sending && queues.values().all(VecDeque::is_empty) {
            return (logs, round);
        }
        round += 1;
        // Phase 1: deliver in (src, dst) order with the original budget rules.
        let mut inboxes: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for (&(src, dst), queue) in &mut queues {
            let mut budget = bandwidth;
            while budget > 0 {
                match queue.front() {
                    Some((_, words)) if u64::from(*words) <= budget => {
                        let (msg, words) = queue.pop_front().unwrap();
                        budget -= u64::from(words);
                        inboxes[dst as usize].push((src, msg));
                    }
                    Some((_, words)) if u64::from(*words) > bandwidth && budget == bandwidth => {
                        let (msg, _) = queue.pop_front().unwrap();
                        inboxes[dst as usize].push((src, msg));
                        budget = 0;
                    }
                    _ => break,
                }
            }
        }
        // Phase 2: record inboxes and enqueue this round's sends.
        for v in 0..n {
            for &(src, msg) in &inboxes[v] {
                logs[v].push((round, src, msg));
            }
            if round <= SEND_ROUNDS {
                for &dst in topology.neighbors(NodeId::new(v)) {
                    let (d, s) = (dst.index() as u32, v as u32);
                    queues
                        .entry((s, d))
                        .or_default()
                        .push_back((payload(s, d, round), width(s, d, round)));
                }
            }
        }
    }
}

fn chatter_topologies() -> Vec<Topology> {
    vec![
        // Irregular sparse graph: unequal degrees, multiple links per node.
        Topology::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4), (4, 5)]),
        Topology::path(5),
        Topology::complete(5),
    ]
}

#[test]
fn flat_link_queues_match_the_reference_model() {
    for (t, topology) in chatter_topologies().into_iter().enumerate() {
        for bandwidth in [1u32, 2, 5] {
            let config = NetworkConfig::default().with_bandwidth(bandwidth);
            let mut net = Network::new(topology.clone(), config, |_| Chatter { log: Vec::new() });
            let report = net.run(10_000);
            assert!(report.terminated, "topology {t}, bandwidth {bandwidth}");

            let (expected_logs, expected_rounds) = reference_run(&topology, u64::from(bandwidth));
            for (v, expected) in expected_logs.iter().enumerate() {
                assert_eq!(
                    &net.program(NodeId::new(v)).log,
                    expected,
                    "topology {t}, bandwidth {bandwidth}: inbox log of node {v} diverged"
                );
            }
            assert_eq!(
                report.simulated_rounds, expected_rounds,
                "topology {t}, bandwidth {bandwidth}: round count diverged"
            );
            assert!(net.is_quiescent());
        }
    }
}

#[test]
fn rerunning_is_byte_identical() {
    let topology = Topology::from_edges(6, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4)]);
    let run = |seed: u64| {
        let config = NetworkConfig::default().with_seed(seed);
        let mut net = Network::new(topology.clone(), config, |_| Chatter { log: Vec::new() });
        let report = net.run(10_000);
        let logs: Vec<InboxLog> = net.into_programs().into_iter().map(|p| p.log).collect();
        (report.simulated_rounds, logs)
    };
    assert_eq!(run(7), run(7));
}
