//! Shared property-test helpers for the integration batteries.
//!
//! One helper, used by both `properties.rs` (index construction) and
//! `churn_differential.rs` (incrementally patched indices): a full structural
//! audit of a [`CliqueIndex`] against the graph it claims to index. Keeping
//! it here means the churn battery asserts the *same* invariants on a patched
//! index that the construction tests assert on a cold build.

use distributed_clique_listing::graphcore::cliques::CliqueIndex;
use distributed_clique_listing::graphcore::Graph;

/// Asserts every structural invariant a [`CliqueIndex`] promises:
///
/// * the degeneracy ordering is a permutation of the vertices and `position`
///   is its exact inverse;
/// * the ordering is a *valid* degeneracy ordering: every vertex has at most
///   `degeneracy` neighbours later in the order (and the degeneracy itself is
///   bounded by the maximum degree);
/// * the oriented DAG agrees with the ordering — `out_neighbors(v)` is
///   exactly the later neighbours of `v` in ascending id order, so every arc
///   strictly increases `position` (acyclicity) and the arcs cover each
///   undirected edge exactly once (`dag.num_edges() == m`);
/// * the adjacency bitsets agree with the CSR rows bit for bit wherever a
///   row exists.
pub fn assert_index_invariants(graph: &Graph, index: &CliqueIndex, context: &str) {
    let n = graph.num_vertices();
    let ordering = index.ordering();
    let dag = index.dag();

    // Ordering: permutation + inverse positions.
    assert_eq!(ordering.order.len(), n, "{context}: order length");
    assert_eq!(ordering.position.len(), n, "{context}: position length");
    let mut seen = vec![false; n];
    for (pos, &v) in ordering.order.iter().enumerate() {
        assert!((v as usize) < n, "{context}: order has out-of-range {v}");
        assert!(!seen[v as usize], "{context}: vertex {v} repeated in order");
        seen[v as usize] = true;
        assert_eq!(
            ordering.position[v as usize], pos,
            "{context}: position is not the inverse of order at {v}"
        );
    }

    // Degeneracy validity: later-neighbour count bounded by the degeneracy.
    let degeneracy = ordering.degeneracy;
    assert!(
        degeneracy <= graph.max_degree(),
        "{context}: degeneracy {degeneracy} exceeds max degree"
    );
    let mut dag_arcs = 0usize;
    for v in 0..n as u32 {
        let later: Vec<u32> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| ordering.position[w as usize] > ordering.position[v as usize])
            .collect();
        assert!(
            later.len() <= degeneracy,
            "{context}: vertex {v} keeps {} later neighbours, degeneracy {degeneracy}",
            later.len()
        );
        // DAG rows: exactly the later neighbours, ascending by id (the CSR
        // row order), so every arc strictly increases position — acyclic.
        assert_eq!(
            dag.out_neighbors(v),
            later.as_slice(),
            "{context}: DAG row of {v} disagrees with the ordering"
        );
        dag_arcs += later.len();
    }
    assert_eq!(
        dag_arcs,
        graph.num_edges(),
        "{context}: DAG arcs must cover each edge exactly once"
    );
    assert_eq!(dag.num_vertices(), n, "{context}: DAG vertex count");
    assert_eq!(
        dag.num_edges(),
        graph.num_edges(),
        "{context}: DAG edge count"
    );

    // Bitsets ↔ CSR agreement, bit for bit.
    for v in 0..n as u32 {
        if let Some(row) = index.bitset_row(v) {
            assert_eq!(row.len(), n.div_ceil(64), "{context}: bitset stride");
            for w in 0..n as u32 {
                let bit = row[w as usize >> 6] >> (w & 63) & 1 == 1;
                assert_eq!(
                    bit,
                    graph.has_edge(v, w),
                    "{context}: bitset row of {v} disagrees with CSR at {w}"
                );
            }
        }
    }
}
