//! The parallel-vs-sequential differential battery for the sharded clique
//! enumeration.
//!
//! The sharded enumerator promises output **byte-identical** to the
//! sequential enumerator at every thread count — same cliques, same emission
//! order, same early-stop prefixes. This battery checks that promise
//! differentially across the full matrix of
//!
//! * clique sizes `p ∈ {3, 4, 5, 6}`,
//! * workload families (Erdős–Rényi, planted cliques, multipartite/Turán,
//!   RMAT, random regular),
//! * thread counts `{1, 2, 3, 8}` (including oversubscription of this
//!   machine), and
//! * seeds drawn from the deterministic in-tree property harness (no
//!   proptest in the build environment; failures reproduce exactly).
//!
//! Checked per cell: the collected listing with emission order (the
//! visit-call trace), the allocation-free parallel count, and `FirstK`-style
//! early-stop prefixes. Shard-plan structure is covered separately.
//!
//! The second half of the file is the **cluster-parallel battery** (PR 5):
//! the CONGEST pipelines (`general`, `fast-k4`, `eden-k4`) fan their
//! per-cluster work out over the shared ordered-merge orchestrator, and
//! every algorithm × workload × thread-count × seed cell must reproduce the
//! `Parallelism::Off` run exactly — sink-call traces, counts, `FirstK`
//! prefixes, per-phase round breakdowns and `to_json` bytes.

#![cfg(feature = "parallel")]

use distributed_clique_listing::cliquelist::{CliqueSink, CountSink, Engine, FirstK, Parallelism};
use distributed_clique_listing::graphcore::cliques::{
    count_cliques_parallel, for_each_clique, for_each_clique_parallel,
    for_each_clique_parallel_while, for_each_clique_while, ShardPlan, ShardedEnumerator,
};
use distributed_clique_listing::graphcore::orientation::{degeneracy_ordering, OrientedDag};
use distributed_clique_listing::graphcore::{gen, Clique, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Thread counts exercised for every workload (1 must hit the sequential
/// delegation path; 8 oversubscribes small shard plans).
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// The workload families of the matrix, sized so the whole battery stays
/// fast while every generator family contributes dense and sparse shapes.
fn workloads(seed: u64) -> Vec<(String, Graph)> {
    vec![
        (
            format!("er(70,0.25,{seed})"),
            gen::erdos_renyi(70, 0.25, seed),
        ),
        (
            format!("planted(80,p6,{seed})"),
            gen::planted_cliques(80, 0.04, 3, 6, seed).0,
        ),
        (
            format!("multipartite(75,3,0.5,{seed})"),
            gen::multipartite(75, 3, 0.5, seed),
        ),
        (
            format!("rmat(6,10,{seed})"),
            gen::rmat(6, 10, (0.57, 0.19, 0.19, 0.05), seed),
        ),
        (
            format!("regular(70,12,{seed})"),
            gen::random_regular(70, 12, seed),
        ),
    ]
}

/// The sequential visit-call trace: the reference for every comparison.
fn sequential_trace(graph: &Graph, p: usize) -> Vec<Clique> {
    let mut trace = Vec::new();
    for_each_clique(graph, p, |c| trace.push(c.to_vec()));
    trace
}

#[test]
fn parallel_trace_and_count_match_sequential_across_the_matrix() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0001);
    for round in 0..2u64 {
        let seed = rng.gen_range(0u64..1_000);
        for (label, graph) in workloads(seed) {
            for p in 3usize..=6 {
                let reference = sequential_trace(&graph, p);
                for threads in THREADS {
                    let mut trace = Vec::new();
                    for_each_clique_parallel(&graph, p, threads, |c| trace.push(c.to_vec()));
                    assert_eq!(
                        trace, reference,
                        "round {round}, {label}, p={p}, threads={threads}: \
                         parallel visit trace diverged from sequential"
                    );
                    assert_eq!(
                        count_cliques_parallel(&graph, p, threads),
                        reference.len(),
                        "round {round}, {label}, p={p}, threads={threads}: count diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn early_stop_prefixes_match_sequential_first_k() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0002);
    for _ in 0..6 {
        let seed = rng.gen_range(0u64..1_000);
        let graph = gen::erdos_renyi(60, 0.35, seed);
        let p = rng.gen_range(3usize..6);
        let reference = sequential_trace(&graph, p);
        if reference.is_empty() {
            continue;
        }
        for threads in THREADS {
            for k in [1usize, 3, 17, reference.len() + 1] {
                let mut prefix = Vec::new();
                let completed = for_each_clique_parallel_while(&graph, p, threads, |c| {
                    prefix.push(c.to_vec());
                    prefix.len() < k
                });
                // The visitor declines at visit k, so the run completes only
                // when fewer than k cliques exist.
                let expected = k.min(reference.len());
                assert_eq!(
                    prefix,
                    reference[..expected],
                    "p={p} threads={threads} k={k}"
                );
                assert_eq!(
                    completed,
                    reference.len() < k,
                    "p={p} threads={threads} k={k}: completion flag wrong"
                );
            }
        }
    }
}

#[test]
fn while_variants_agree_on_completion_for_degenerate_inputs() {
    // p < 3 and tiny graphs delegate to the sequential path; the parallel
    // entry points must still be total and equal.
    for p in 0usize..=2 {
        let graph = gen::path_graph(5);
        let mut seq = Vec::new();
        for_each_clique_while(&graph, p, |c| {
            seq.push(c.to_vec());
            true
        });
        let mut par = Vec::new();
        assert!(for_each_clique_parallel_while(&graph, p, 4, |c| {
            par.push(c.to_vec());
            true
        }));
        assert_eq!(par, seq, "p={p}");
    }
    let empty = Graph::new(0);
    assert_eq!(count_cliques_parallel(&empty, 4, 8), 0);
    let mut visited = false;
    for_each_clique_parallel(&empty, 3, 8, |_| visited = true);
    assert!(!visited);
}

#[test]
fn shard_plans_partition_the_ordering_with_balanced_work() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0003);
    for case in 0..12 {
        let n = rng.gen_range(4usize..90);
        let prob = f64::from(rng.gen_range(5u32..50)) / 100.0;
        let graph = gen::erdos_renyi(n, prob, rng.gen_range(0u64..1_000));
        let ordering = degeneracy_ordering(&graph);
        let dag = OrientedDag::from_ordering(&graph, &ordering);
        for target in [1usize, 2, 4, 16, 64] {
            let plan = ShardPlan::balanced(&dag, &ordering, 4, target);
            assert!(plan.num_shards() >= 1, "case {case}");
            assert!(plan.num_shards() <= target.min(n), "case {case}");
            let mut covered = 0usize;
            for range in plan.ranges() {
                assert_eq!(range.start, covered, "case {case}: gap or overlap");
                assert!(!range.is_empty(), "case {case}: empty shard");
                covered = range.end;
            }
            assert_eq!(covered, n, "case {case}: plan must cover every root");
        }
    }
}

// --------------------------------------------------------------------------
// Cluster-parallel battery: the CONGEST pipelines under the Parallelism knob.
// --------------------------------------------------------------------------

/// The three cluster-pipeline algorithms made `Sharded` by PR 5.
const CONGEST_ALGORITHMS: [&str; 3] = ["general", "fast-k4", "eden-k4"];

/// Records the exact sink-call sequence of a run (never saturates).
#[derive(Default)]
struct TraceSink {
    accepts: Vec<Clique>,
}

impl CliqueSink for TraceSink {
    fn accept(&mut self, clique: &[u32]) {
        self.accepts.push(clique.to_vec());
    }
}

/// Workloads where the cluster pipeline genuinely activates (dense enough to
/// produce clusters) plus a sparse shape exercising the no-cluster path.
fn congest_workloads(seed: u64) -> Vec<(String, Graph)> {
    vec![
        (
            format!("er(80,0.3,{seed})"),
            gen::erdos_renyi(80, 0.3, seed),
        ),
        (
            format!("planted(90,p4,{seed})"),
            gen::planted_cliques(90, 0.05, 3, 4, seed).0,
        ),
        (
            format!("er-sparse(90,0.08,{seed})"),
            gen::erdos_renyi(90, 0.08, seed),
        ),
    ]
}

fn congest_engine(algorithm: &str, seed: u64, parallelism: Parallelism) -> Engine {
    Engine::builder()
        .p(4)
        .algorithm(algorithm)
        .seed(seed)
        // Simulation-scale tuning keeps the cluster pipeline active at these
        // sizes instead of skipping straight to the final broadcast.
        .experiment_scale()
        .parallelism(parallelism)
        .build()
        .expect("valid engine")
}

#[test]
fn cluster_parallel_runs_are_byte_identical_across_threads_and_seeds() {
    let mut rng = SmallRng::seed_from_u64(0xC105_0001);
    for _ in 0..2 {
        let seed = rng.gen_range(0u64..1_000);
        for algorithm in CONGEST_ALGORITHMS {
            for (label, graph) in congest_workloads(seed) {
                let reference_engine = congest_engine(algorithm, seed, Parallelism::Off);
                let mut reference = TraceSink::default();
                let reference_report = reference_engine.run(&graph, &mut reference);
                let reference_json = reference_report.to_json();

                for threads in THREADS {
                    let engine = congest_engine(algorithm, seed, Parallelism::Threads(threads));
                    let mut trace = TraceSink::default();
                    let report = engine.run(&graph, &mut trace);
                    assert_eq!(
                        trace.accepts, reference.accepts,
                        "{algorithm}, {label}, threads={threads}: sink-call trace \
                         diverged from Parallelism::Off"
                    );
                    // Phase-by-phase round breakdown, not just the total: a
                    // cluster dropped or double-counted by the fan-out would
                    // show up here first.
                    assert_eq!(
                        report.rounds, reference_report.rounds,
                        "{algorithm}, {label}, threads={threads}: phase rounds diverged"
                    );
                    assert_eq!(
                        report.diagnostics, reference_report.diagnostics,
                        "{algorithm}, {label}, threads={threads}: diagnostics diverged"
                    );
                    assert_eq!(
                        report.to_json(),
                        reference_json,
                        "{algorithm}, {label}, threads={threads}: to_json not byte-identical"
                    );
                    let mut count = CountSink::new();
                    engine.run(&graph, &mut count);
                    assert_eq!(
                        count.count as usize,
                        reference.accepts.len(),
                        "{algorithm}, {label}, threads={threads}: count diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn cluster_parallel_first_k_prefixes_match_sequential() {
    let mut rng = SmallRng::seed_from_u64(0xC105_0002);
    for _ in 0..2 {
        let seed = rng.gen_range(0u64..1_000);
        let graph = gen::erdos_renyi(80, 0.3, seed);
        for algorithm in CONGEST_ALGORITHMS {
            let reference_engine = congest_engine(algorithm, seed, Parallelism::Off);
            let mut full = TraceSink::default();
            reference_engine.run(&graph, &mut full);
            if full.accepts.is_empty() {
                continue;
            }
            for k in [1usize, 5, full.accepts.len() + 7] {
                let mut reference_first = FirstK::new(k);
                let reference_report = reference_engine.run(&graph, &mut reference_first);
                for threads in THREADS {
                    let engine = congest_engine(algorithm, seed, Parallelism::Threads(threads));
                    let mut first = FirstK::new(k);
                    let report = engine.run(&graph, &mut first);
                    assert_eq!(
                        first.cliques, reference_first.cliques,
                        "{algorithm}, threads={threads}, k={k}: FirstK prefix diverged"
                    );
                    // Saturation skips replay but never communication: the
                    // round breakdown and emission accounting stay identical.
                    assert_eq!(
                        report.rounds, reference_report.rounds,
                        "{algorithm}, threads={threads}, k={k}: rounds diverged under saturation"
                    );
                    assert_eq!(
                        report.sink, reference_report.sink,
                        "{algorithm}, threads={threads}, k={k}: sink summary diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn cluster_parallel_auto_matches_explicit_threads() {
    // Parallelism::Auto resolves from the environment; whatever it resolves
    // to, the output must equal the Off reference (the CI matrix pins
    // CLIQUELIST_THREADS to sweep this).
    let graph = gen::erdos_renyi(70, 0.3, 11);
    for algorithm in CONGEST_ALGORITHMS {
        let mut reference = TraceSink::default();
        let reference_report =
            congest_engine(algorithm, 11, Parallelism::Off).run(&graph, &mut reference);
        let mut auto = TraceSink::default();
        let auto_report = congest_engine(algorithm, 11, Parallelism::Auto).run(&graph, &mut auto);
        assert_eq!(
            auto.accepts, reference.accepts,
            "{algorithm}: Auto diverged"
        );
        assert_eq!(
            auto_report.to_json(),
            reference_report.to_json(),
            "{algorithm}: Auto to_json diverged"
        );
    }
}

#[test]
fn shard_enumeration_concatenates_to_the_sequential_trace() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0004);
    for _ in 0..4 {
        let graph = gen::erdos_renyi(50, 0.35, rng.gen_range(0u64..1_000));
        let p = rng.gen_range(3usize..6);
        let reference = sequential_trace(&graph, p);
        for target in [1usize, 3, 9] {
            let enumerator = ShardedEnumerator::new(&graph, p, target);
            let mut merged = Vec::new();
            for shard in 0..enumerator.num_shards() {
                enumerator.for_each_in_shard(shard, |c| merged.push(c.to_vec()));
            }
            assert_eq!(merged, reference, "p={p} target={target}");
        }
    }
}
