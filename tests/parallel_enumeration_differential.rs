//! The parallel-vs-sequential differential battery for the sharded clique
//! enumeration.
//!
//! The sharded enumerator promises output **byte-identical** to the
//! sequential enumerator at every thread count — same cliques, same emission
//! order, same early-stop prefixes. This battery checks that promise
//! differentially across the full matrix of
//!
//! * clique sizes `p ∈ {3, 4, 5, 6}`,
//! * workload families (Erdős–Rényi, planted cliques, multipartite/Turán,
//!   RMAT, random regular),
//! * thread counts `{1, 2, 3, 8}` (including oversubscription of this
//!   machine), and
//! * seeds drawn from the deterministic in-tree property harness (no
//!   proptest in the build environment; failures reproduce exactly).
//!
//! Checked per cell: the collected listing with emission order (the
//! visit-call trace), the allocation-free parallel count, and `FirstK`-style
//! early-stop prefixes. Shard-plan structure is covered separately.

#![cfg(feature = "parallel")]

use distributed_clique_listing::graphcore::cliques::{
    count_cliques_parallel, for_each_clique, for_each_clique_parallel,
    for_each_clique_parallel_while, for_each_clique_while, ShardPlan, ShardedEnumerator,
};
use distributed_clique_listing::graphcore::orientation::{degeneracy_ordering, OrientedDag};
use distributed_clique_listing::graphcore::{gen, Clique, Graph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Thread counts exercised for every workload (1 must hit the sequential
/// delegation path; 8 oversubscribes small shard plans).
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// The workload families of the matrix, sized so the whole battery stays
/// fast while every generator family contributes dense and sparse shapes.
fn workloads(seed: u64) -> Vec<(String, Graph)> {
    vec![
        (
            format!("er(70,0.25,{seed})"),
            gen::erdos_renyi(70, 0.25, seed),
        ),
        (
            format!("planted(80,p6,{seed})"),
            gen::planted_cliques(80, 0.04, 3, 6, seed).0,
        ),
        (
            format!("multipartite(75,3,0.5,{seed})"),
            gen::multipartite(75, 3, 0.5, seed),
        ),
        (
            format!("rmat(6,10,{seed})"),
            gen::rmat(6, 10, (0.57, 0.19, 0.19, 0.05), seed),
        ),
        (
            format!("regular(70,12,{seed})"),
            gen::random_regular(70, 12, seed),
        ),
    ]
}

/// The sequential visit-call trace: the reference for every comparison.
fn sequential_trace(graph: &Graph, p: usize) -> Vec<Clique> {
    let mut trace = Vec::new();
    for_each_clique(graph, p, |c| trace.push(c.to_vec()));
    trace
}

#[test]
fn parallel_trace_and_count_match_sequential_across_the_matrix() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0001);
    for round in 0..2u64 {
        let seed = rng.gen_range(0u64..1_000);
        for (label, graph) in workloads(seed) {
            for p in 3usize..=6 {
                let reference = sequential_trace(&graph, p);
                for threads in THREADS {
                    let mut trace = Vec::new();
                    for_each_clique_parallel(&graph, p, threads, |c| trace.push(c.to_vec()));
                    assert_eq!(
                        trace, reference,
                        "round {round}, {label}, p={p}, threads={threads}: \
                         parallel visit trace diverged from sequential"
                    );
                    assert_eq!(
                        count_cliques_parallel(&graph, p, threads),
                        reference.len(),
                        "round {round}, {label}, p={p}, threads={threads}: count diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn early_stop_prefixes_match_sequential_first_k() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0002);
    for _ in 0..6 {
        let seed = rng.gen_range(0u64..1_000);
        let graph = gen::erdos_renyi(60, 0.35, seed);
        let p = rng.gen_range(3usize..6);
        let reference = sequential_trace(&graph, p);
        if reference.is_empty() {
            continue;
        }
        for threads in THREADS {
            for k in [1usize, 3, 17, reference.len() + 1] {
                let mut prefix = Vec::new();
                let completed = for_each_clique_parallel_while(&graph, p, threads, |c| {
                    prefix.push(c.to_vec());
                    prefix.len() < k
                });
                // The visitor declines at visit k, so the run completes only
                // when fewer than k cliques exist.
                let expected = k.min(reference.len());
                assert_eq!(
                    prefix,
                    reference[..expected],
                    "p={p} threads={threads} k={k}"
                );
                assert_eq!(
                    completed,
                    reference.len() < k,
                    "p={p} threads={threads} k={k}: completion flag wrong"
                );
            }
        }
    }
}

#[test]
fn while_variants_agree_on_completion_for_degenerate_inputs() {
    // p < 3 and tiny graphs delegate to the sequential path; the parallel
    // entry points must still be total and equal.
    for p in 0usize..=2 {
        let graph = gen::path_graph(5);
        let mut seq = Vec::new();
        for_each_clique_while(&graph, p, |c| {
            seq.push(c.to_vec());
            true
        });
        let mut par = Vec::new();
        assert!(for_each_clique_parallel_while(&graph, p, 4, |c| {
            par.push(c.to_vec());
            true
        }));
        assert_eq!(par, seq, "p={p}");
    }
    let empty = Graph::new(0);
    assert_eq!(count_cliques_parallel(&empty, 4, 8), 0);
    let mut visited = false;
    for_each_clique_parallel(&empty, 3, 8, |_| visited = true);
    assert!(!visited);
}

#[test]
fn shard_plans_partition_the_ordering_with_balanced_work() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0003);
    for case in 0..12 {
        let n = rng.gen_range(4usize..90);
        let prob = f64::from(rng.gen_range(5u32..50)) / 100.0;
        let graph = gen::erdos_renyi(n, prob, rng.gen_range(0u64..1_000));
        let ordering = degeneracy_ordering(&graph);
        let dag = OrientedDag::from_ordering(&graph, &ordering);
        for target in [1usize, 2, 4, 16, 64] {
            let plan = ShardPlan::balanced(&dag, &ordering, 4, target);
            assert!(plan.num_shards() >= 1, "case {case}");
            assert!(plan.num_shards() <= target.min(n), "case {case}");
            let mut covered = 0usize;
            for range in plan.ranges() {
                assert_eq!(range.start, covered, "case {case}: gap or overlap");
                assert!(!range.is_empty(), "case {case}: empty shard");
                covered = range.end;
            }
            assert_eq!(covered, n, "case {case}: plan must cover every root");
        }
    }
}

#[test]
fn shard_enumeration_concatenates_to_the_sequential_trace() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF_0004);
    for _ in 0..4 {
        let graph = gen::erdos_renyi(50, 0.35, rng.gen_range(0u64..1_000));
        let p = rng.gen_range(3usize..6);
        let reference = sequential_trace(&graph, p);
        for target in [1usize, 3, 9] {
            let enumerator = ShardedEnumerator::new(&graph, p, target);
            let mut merged = Vec::new();
            for shard in 0..enumerator.num_shards() {
                enumerator.for_each_in_shard(shard, |c| merged.push(c.to_vec()));
            }
            assert_eq!(merged, reference, "p={p} target={target}");
        }
    }
}
