//! The kernel differential battery: Trie vs Recursive vs brute force.
//!
//! PR 10 adds a second enumeration kernel (the induced-subgraph trie with
//! prefix reuse and pivoting) behind the `KernelStrategy` knob. The knob's
//! contract is absolute: **the kernel never changes a single output byte** —
//! same cliques, same visit order, same early-stop prefixes, same serialised
//! reports — only the wall-clock profile. This battery checks that contract
//! differentially across the full matrix of
//!
//! * clique sizes `p ∈ {3, 4, 5, 6}`,
//! * workload families (Erdős–Rényi sparse and dense, planted cliques,
//!   multipartite, RMAT, and the dense Turán graph `T(n,3)` where the trie
//!   kernel's pivot shortcut dominates),
//! * kernel strategies `{Recursive, Trie, Auto}`,
//! * thread grants `{Off, 1, 2, 8}`, and
//! * several fixed seeds (failures reproduce exactly).
//!
//! Checked per cell: the visit-call trace against the *retained naive
//! reference* (plain backtracking, structurally independent of both
//! kernels), counts, `FirstK` early-stop prefixes, and `RunReport::to_json`
//! bytes. A final cell pins the `Auto` resolution itself: a pure, replayable
//! function of (strategy, degeneracy) — never of the host.

use distributed_clique_listing::cliquelist::{algorithms, CliqueSink, Engine, FirstK, Parallelism};
use distributed_clique_listing::graphcore::cliques::{
    for_each_clique_while_with, CliqueIndex, KernelChoice, KernelStrategy,
};
use distributed_clique_listing::graphcore::{gen, Clique, Graph};

const STRATEGIES: [KernelStrategy; 3] = [
    KernelStrategy::Recursive,
    KernelStrategy::Trie,
    KernelStrategy::Auto,
];

/// The naive reference: enumerate increasing vertex tuples, extending only
/// by vertices adjacent to every chosen one. Independent of the degeneracy
/// machinery, the oriented DAG, the bitsets and both kernels.
fn brute_force_cliques(graph: &Graph, p: usize) -> Vec<Clique> {
    fn extend(graph: &Graph, p: usize, start: u32, current: &mut Vec<u32>, out: &mut Vec<Clique>) {
        if current.len() == p {
            out.push(current.clone());
            return;
        }
        for v in start..graph.num_vertices() as u32 {
            if current.iter().all(|&u| graph.has_edge(u, v)) {
                current.push(v);
                extend(graph, p, v + 1, current, out);
                current.pop();
            }
        }
    }
    let mut out = Vec::new();
    extend(graph, p, 0, &mut Vec::with_capacity(p), &mut out);
    out
}

/// Workloads sized for the brute-force cross-check (the naive reference is
/// exponential-ish): every family the fast paths specialise for, including
/// the dense Turán shape that drives the trie kernel's pivot shortcut.
fn workloads(p: usize, seed: u64) -> Vec<(String, Graph)> {
    vec![
        (
            format!("er(26,0.35,{seed})"),
            gen::erdos_renyi(26, 0.35, seed),
        ),
        (
            format!("er(20,0.6,{seed})"),
            gen::erdos_renyi(20, 0.6, seed),
        ),
        (
            format!("planted(26,p={p},{seed})"),
            gen::planted_cliques(26, 0.1, 2, p, seed).0,
        ),
        (
            format!("multipartite(24,3,0.7,{seed})"),
            gen::multipartite(24, 3, 0.7, seed),
        ),
        (
            // The complete 3-partite Turán graph: every candidate set is
            // complete or near-complete, so this cell lives almost entirely
            // in the trie kernel's combination-emission shortcut.
            format!("turan(18,3,{seed})"),
            gen::multipartite(18, 3, 1.0, seed),
        ),
        (
            format!("rmat(5,6,{seed})"),
            gen::rmat(5, 6, (0.57, 0.19, 0.19, 0.05), seed),
        ),
    ]
}

fn trace_with(graph: &Graph, p: usize, strategy: KernelStrategy) -> Vec<Clique> {
    let mut trace = Vec::new();
    for_each_clique_while_with(graph, p, strategy, |c| {
        trace.push(c.to_vec());
        true
    });
    trace
}

#[test]
fn every_kernel_matches_brute_force_across_the_matrix() {
    for seed in [1u64, 2] {
        for p in 3usize..=6 {
            for (label, graph) in workloads(p, seed) {
                let naive = brute_force_cliques(&graph, p);
                // The recursive kernel is the order reference (degeneracy-root
                // visit order); brute force checks the *set* plus count.
                let reference = trace_with(&graph, p, KernelStrategy::Recursive);
                let mut sorted = reference.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted, naive,
                    "{label}, p={p}: listing diverged from the naive reference"
                );
                for strategy in STRATEGIES {
                    assert_eq!(
                        trace_with(&graph, p, strategy),
                        reference,
                        "{label}, p={p}, {strategy}: visit trace diverged from \
                         the recursive kernel"
                    );
                }
            }
        }
    }
}

#[test]
fn early_stop_prefixes_are_kernel_independent() {
    // A visitor that declines mid-run must see the same prefix from both
    // kernels — including mid-combination-block aborts inside the trie
    // kernel's pivot shortcut (the Turán workload guarantees such blocks).
    for (label, graph, p) in [
        // K4-free, so every triangle comes out of a complete candidate set:
        // the abort lands inside a combination block.
        ("turan(21,3)", gen::multipartite(21, 3, 1.0, 5), 3usize),
        ("er(40,0.4)", gen::erdos_renyi(40, 0.4, 5), 4usize),
    ] {
        let reference = trace_with(&graph, p, KernelStrategy::Recursive);
        assert!(reference.len() > 20, "{label}: workload too sparse");
        for k in [1usize, 7, 20, reference.len() + 1] {
            for strategy in STRATEGIES {
                let mut prefix = Vec::new();
                let completed = for_each_clique_while_with(&graph, p, strategy, |c| {
                    prefix.push(c.to_vec());
                    prefix.len() < k
                });
                let expected = k.min(reference.len());
                assert_eq!(
                    prefix,
                    reference[..expected],
                    "{label}, {strategy}, k={k}: prefix diverged"
                );
                assert_eq!(
                    completed,
                    reference.len() < k,
                    "{label}, {strategy}, k={k}: completion flag wrong"
                );
            }
        }
    }
}

/// Records the exact sink-call sequence of a run (never saturates).
#[derive(Default)]
struct TraceSink {
    accepts: Vec<Clique>,
}

impl CliqueSink for TraceSink {
    fn accept(&mut self, clique: &[u32]) {
        self.accepts.push(clique.to_vec());
    }
}

fn engine(algorithm: &str, kernel: KernelStrategy, parallelism: Parallelism) -> Engine {
    Engine::builder()
        .p(4)
        .algorithm(algorithm)
        .seed(7)
        .experiment_scale()
        .kernel(kernel)
        .parallelism(parallelism)
        .build()
        .expect("valid engine")
}

#[test]
fn engine_runs_are_byte_identical_across_kernels_and_grants() {
    // The full-pipeline cell: every built-in algorithm, every kernel, every
    // grant, one dense-enough workload — sink-call traces and `to_json`
    // bytes must all equal the (Recursive, Off) reference. This is the
    // battery's teeth for the `RunReport` exclusion contract: the kernel
    // summary lives on the report but never in its serialised bytes.
    let graph = gen::erdos_renyi(70, 0.3, 13);
    let grants = [
        Parallelism::Off,
        Parallelism::Threads(1),
        Parallelism::Threads(2),
        Parallelism::Threads(8),
    ];
    for algorithm in algorithms() {
        let name = algorithm.info().name;
        if !algorithm.info().supports_p(4) {
            continue;
        }
        let mut reference = TraceSink::default();
        let reference_report =
            engine(name, KernelStrategy::Recursive, Parallelism::Off).run(&graph, &mut reference);
        let reference_json = reference_report.to_json();
        assert!(
            !reference.accepts.is_empty(),
            "{name}: workload too sparse to exercise the kernels"
        );
        for kernel in STRATEGIES {
            for grant in grants {
                let engine = engine(name, kernel, grant);
                let mut trace = TraceSink::default();
                let report = engine.run(&graph, &mut trace);
                assert_eq!(
                    trace.accepts, reference.accepts,
                    "{name}, {kernel}, {grant:?}: sink-call trace diverged"
                );
                assert_eq!(
                    report.to_json(),
                    reference_json,
                    "{name}, {kernel}, {grant:?}: to_json not byte-identical"
                );
                assert_eq!(report.kernel.requested, kernel, "{name}: summary echo");
            }
        }
    }
}

#[test]
fn engine_first_k_prefixes_are_kernel_independent() {
    let graph = gen::erdos_renyi(70, 0.3, 13);
    let mut full = TraceSink::default();
    engine(
        "congested-clique",
        KernelStrategy::Recursive,
        Parallelism::Off,
    )
    .run(&graph, &mut full);
    assert!(full.accepts.len() > 5);
    for k in [1usize, 5, full.accepts.len() + 3] {
        let mut reference = FirstK::new(k);
        engine(
            "congested-clique",
            KernelStrategy::Recursive,
            Parallelism::Off,
        )
        .run(&graph, &mut reference);
        for kernel in STRATEGIES {
            for grant in [Parallelism::Off, Parallelism::Threads(4)] {
                let mut first = FirstK::new(k);
                engine("congested-clique", kernel, grant).run(&graph, &mut first);
                assert_eq!(
                    first.cliques, reference.cliques,
                    "{kernel}, {grant:?}, k={k}: FirstK prefix diverged"
                );
            }
        }
    }
}

#[test]
fn auto_resolution_is_deterministic_and_pure() {
    // `Auto` resolves from the graph's degeneracy alone: rebuilt indexes of
    // the same graph agree, sparse shapes pin Recursive, dense shapes pin
    // Trie, and explicit strategies are always honoured. Nothing here may
    // depend on the host (thread counts, timing, environment).
    let sparse = gen::erdos_renyi(200, 0.02, 1);
    let dense = gen::multipartite(60, 6, 1.0, 2);
    for graph in [&sparse, &dense] {
        let a = CliqueIndex::build(graph);
        let b = CliqueIndex::build(graph);
        for strategy in STRATEGIES {
            assert_eq!(
                a.resolve_kernel(strategy),
                b.resolve_kernel(strategy),
                "rebuilt index resolved differently"
            );
        }
    }
    let sparse_index = CliqueIndex::build(&sparse);
    let dense_index = CliqueIndex::build(&dense);
    assert_eq!(
        sparse_index.resolve_kernel(KernelStrategy::Auto),
        KernelChoice::Recursive
    );
    assert_eq!(
        dense_index.resolve_kernel(KernelStrategy::Auto),
        KernelChoice::Trie
    );
    assert_eq!(
        sparse_index.resolve_kernel(KernelStrategy::Trie),
        KernelChoice::Trie,
        "explicit Trie is honoured even where Auto declines"
    );
    assert_eq!(
        dense_index.resolve_kernel(KernelStrategy::Recursive),
        KernelChoice::Recursive
    );
}
