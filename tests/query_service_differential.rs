//! The differential battery for the snapshot/query subsystem.
//!
//! The query service promises **byte-identical** batch responses — every
//! [`QueryResponse::to_json`] payload, in request order — regardless of
//!
//! * the thread grant (`Parallelism::Off`, `Threads(1)`, `Threads(2)`,
//!   `Threads(8)`, and `Auto`, which resolves the `CLIQUELIST_THREADS`
//!   environment knob that the CI perf matrix sweeps over 1 and 4), and
//! * the cache state (a cold service and a warm replay of the same batch).
//!
//! This file checks that promise differentially across workload families and
//! mixed query batches, under both feature configurations: without
//! `parallel`, every grant falls back to sequential execution and the
//! equality degenerates to a determinism check of the fallback; with
//! `parallel`, the batches genuinely fan out over scoped workers through
//! `ordered_merge`. It also pins the cache-identity contract at the
//! workspace surface: any change to the snapshot, the query parameters or
//! the seed must miss the cache, and only byte-identical requests may hit.

use distributed_clique_listing::cliquelist::Parallelism;
use distributed_clique_listing::graphcore::{gen, Graph};
use distributed_clique_listing::query::{
    GraphSnapshot, Query, QueryBuilder, QueryError, QueryOutcome, QueryResponse, QueryService,
};
use std::sync::Arc;

/// Thread grants of the matrix. `Off` is the reference; `Threads(n)` models
/// an explicit `CLIQUELIST_THREADS=n` grant (the env knob resolves to the
/// same setting through `Parallelism::Auto`); 8 oversubscribes this machine.
const GRANTS: [Parallelism; 5] = [
    Parallelism::Off,
    Parallelism::Threads(1),
    Parallelism::Threads(2),
    Parallelism::Threads(8),
    Parallelism::Auto,
];

/// The workload families of the matrix — dense, planted and bipartite-ish
/// shapes so batches mix empty and heavily populated answers.
fn workloads() -> Vec<(String, Graph)> {
    vec![
        ("er(60,0.3)".to_string(), gen::erdos_renyi(60, 0.3, 9)),
        (
            "planted(70,p5)".to_string(),
            gen::planted_cliques(70, 0.05, 3, 5, 17).0,
        ),
        (
            "multipartite(60,4,0.6)".to_string(),
            gen::multipartite(60, 4, 0.6, 23),
        ),
    ]
}

/// A mixed batch touching every query kind, several clique sizes and a
/// couple of seeds.
fn mixed_batch(snapshot: &Arc<GraphSnapshot>) -> Vec<Query> {
    let graph = snapshot.graph();
    let n = graph.num_vertices() as u32;
    let mut queries = vec![
        QueryBuilder::new().p(3).count().build(snapshot).unwrap(),
        QueryBuilder::new().p(4).count().build(snapshot).unwrap(),
        QueryBuilder::new().p(5).count().build(snapshot).unwrap(),
        QueryBuilder::new().p(3).first(10).build(snapshot).unwrap(),
        QueryBuilder::new().p(4).first(1).build(snapshot).unwrap(),
        QueryBuilder::new().p(3).exists().build(snapshot).unwrap(),
        QueryBuilder::new().p(5).exists().build(snapshot).unwrap(),
        QueryBuilder::new()
            .p(4)
            .seed(7)
            .count()
            .build(snapshot)
            .unwrap(),
    ];
    for vertex in [0, n / 2, n - 1] {
        queries.push(
            QueryBuilder::new()
                .p(3)
                .containing_vertex(vertex)
                .build(snapshot)
                .unwrap(),
        );
    }
    for (u, v) in graph.edges().take(6) {
        queries.push(
            QueryBuilder::new()
                .p(4)
                .containing_edge(u, v)
                .build(snapshot)
                .unwrap(),
        );
    }
    queries
}

fn payloads(responses: &[QueryResponse]) -> Vec<String> {
    responses.iter().map(QueryResponse::to_json).collect()
}

/// The core differential: for every workload, every thread grant and both
/// cache temperatures reproduce the `Parallelism::Off` cold run byte for
/// byte, in request order.
#[test]
fn batch_payloads_are_byte_identical_across_grants_and_cache_states() {
    for (label, graph) in workloads() {
        let snapshot = GraphSnapshot::build(graph).into_shared();
        let batch = mixed_batch(&snapshot);
        let reference = payloads(
            &QueryService::with_parallelism(snapshot.clone(), Parallelism::Off)
                .execute_batch(&batch)
                .unwrap(),
        );
        for grant in GRANTS {
            let service = QueryService::with_parallelism(snapshot.clone(), grant);
            let cold = payloads(&service.execute_batch(&batch).unwrap());
            assert_eq!(cold, reference, "{label}, {grant:?}: cold run diverged");
            let warm = payloads(&service.execute_batch(&batch).unwrap());
            assert_eq!(warm, reference, "{label}, {grant:?}: warm run diverged");
            assert!(
                service
                    .execute_batch(&batch)
                    .unwrap()
                    .iter()
                    .all(|r| r.report.cache_hit),
                "{label}, {grant:?}: a warm replay must be served from cache"
            );
            // Clearing the cache forces recomputation — still identical.
            service.clear_cache();
            let recomputed = payloads(&service.execute_batch(&batch).unwrap());
            assert_eq!(recomputed, reference, "{label}, {grant:?}: after clear");
        }
    }
}

/// Single-query execution and batch execution agree payload for payload —
/// the batch fan-out must not change any answer.
#[test]
fn single_and_batch_execution_agree() {
    let snapshot = GraphSnapshot::build(gen::erdos_renyi(55, 0.3, 31)).into_shared();
    let batch = mixed_batch(&snapshot);
    let batched = QueryService::new(snapshot.clone())
        .execute_batch(&batch)
        .unwrap();
    let singles = QueryService::new(snapshot.clone());
    for (query, response) in batch.iter().zip(&batched) {
        assert_eq!(
            singles.execute(query).unwrap().to_json(),
            response.to_json(),
            "single/batch divergence for {}",
            query.canonical_identity()
        );
    }
}

/// The cache-identity contract at the workspace surface: byte-identical
/// requests hit; any change to snapshot, query shape or seed misses.
#[test]
fn cache_hits_require_the_full_identity_to_match() {
    let snapshot = GraphSnapshot::build(gen::erdos_renyi(40, 0.35, 3)).into_shared();
    let service = QueryService::new(snapshot.clone());

    let base = QueryBuilder::new().p(4).count().build(&snapshot).unwrap();
    assert!(!service.execute(&base).unwrap().report.cache_hit);
    assert!(
        service.execute(&base).unwrap().report.cache_hit,
        "identical request must hit"
    );

    // A different query kind, parameter or seed each miss.
    let variants = [
        QueryBuilder::new().p(3).count().build(&snapshot).unwrap(),
        QueryBuilder::new().p(4).exists().build(&snapshot).unwrap(),
        QueryBuilder::new().p(4).first(2).build(&snapshot).unwrap(),
        QueryBuilder::new()
            .p(4)
            .seed(1)
            .count()
            .build(&snapshot)
            .unwrap(),
        QueryBuilder::new()
            .p(4)
            .containing_vertex(0)
            .build(&snapshot)
            .unwrap(),
    ];
    for variant in &variants {
        assert!(
            !service.execute(variant).unwrap().report.cache_hit,
            "{} must miss",
            variant.canonical_identity()
        );
    }

    // A structurally different snapshot is a different universe: the query
    // does not even execute against the old service, and a fresh service
    // over the changed graph starts cold.
    let grown = GraphSnapshot::build(gen::erdos_renyi(40, 0.35, 4)).into_shared();
    assert_ne!(snapshot.id(), grown.id());
    let grown_query = QueryBuilder::new().p(4).count().build(&grown).unwrap();
    assert!(matches!(
        service.execute(&grown_query).unwrap_err(),
        QueryError::SnapshotMismatch { .. }
    ));
    let grown_service = QueryService::new(grown.clone());
    assert!(
        !grown_service
            .execute(&grown_query)
            .unwrap()
            .report
            .cache_hit
    );
}

/// Builder validation at the workspace surface: every misuse is a typed
/// error, never a panic, and valid requests survive the round trip.
#[test]
fn builder_misuse_is_typed_at_the_workspace_surface() {
    let snapshot = GraphSnapshot::build(gen::path_graph(10)).into_shared();
    let cases: Vec<(QueryError, Result<Query, QueryError>)> = vec![
        (
            QueryError::MissingKind,
            QueryBuilder::new().p(3).build(&snapshot),
        ),
        (
            QueryError::MissingCliqueSize,
            QueryBuilder::new().exists().build(&snapshot),
        ),
        (
            QueryError::CliqueSizeTooSmall { p: 2 },
            QueryBuilder::new().p(2).count().build(&snapshot),
        ),
        (
            QueryError::ZeroLimit,
            QueryBuilder::new().p(3).first(0).build(&snapshot),
        ),
        (
            QueryError::SelfLoopEdge { vertex: 4 },
            QueryBuilder::new()
                .p(3)
                .containing_edge(4, 4)
                .build(&snapshot),
        ),
        (
            QueryError::VertexOutOfRange {
                vertex: 10,
                num_vertices: 10,
            },
            QueryBuilder::new()
                .p(3)
                .containing_vertex(10)
                .build(&snapshot),
        ),
        (
            QueryError::ConflictingKinds {
                first: "exists",
                second: "count-kp",
            },
            QueryBuilder::new().p(3).exists().count().build(&snapshot),
        ),
        (
            QueryError::UnpreparedCliqueSize {
                p: 7,
                prepared: vec![3, 4, 5],
            },
            QueryBuilder::new().p(7).count().build(&snapshot),
        ),
    ];
    for (expected, got) in cases {
        assert_eq!(got, Err(expected));
    }
    // The batch pre-validation surfaces the same typed errors.
    let foreign_snapshot = GraphSnapshot::build(gen::complete_graph(6)).into_shared();
    let foreign = QueryBuilder::new()
        .p(3)
        .count()
        .build(&foreign_snapshot)
        .unwrap();
    let local = QueryBuilder::new().p(3).count().build(&snapshot).unwrap();
    let service = QueryService::new(snapshot);
    let err = service.execute_batch(&[local, foreign]).unwrap_err();
    assert!(matches!(err, QueryError::SnapshotMismatch { .. }));
    // Nothing from the rejected batch was executed or cached.
    assert_eq!(service.cache_stats().entries, 0);
}

/// The per-query work budget: exhaustion is a typed error, replayed
/// identically, and never cached; sufficient budgets answer exactly like
/// their unbounded twins under a separate cache identity.
#[test]
fn work_budgets_are_typed_deterministic_and_uncached() {
    let snapshot = GraphSnapshot::build(gen::erdos_renyi(50, 0.3, 19)).into_shared();
    let service = QueryService::new(snapshot.clone());
    let unbounded = QueryBuilder::new().p(4).count().build(&snapshot).unwrap();
    let QueryOutcome::Count(total) = service.execute(&unbounded).unwrap().outcome else {
        panic!("count query must yield a count");
    };
    assert!(
        total >= 3,
        "workload must have cliques for the budget to meter"
    );

    // An exactly-sufficient budget answers identically to the unbounded
    // query — but under its own cache identity, so it misses cold.
    let sufficient = QueryBuilder::new()
        .p(4)
        .budget(total)
        .count()
        .build(&snapshot)
        .unwrap();
    let cold = service.execute(&sufficient).unwrap();
    assert!(!cold.report.cache_hit);
    assert_eq!(cold.outcome, QueryOutcome::Count(total));
    let entries = service.cache_stats().entries;
    assert_eq!(entries, 2, "budgeted and unbounded entries are distinct");
    assert!(service.execute(&sufficient).unwrap().report.cache_hit);

    // One short: a typed error, deterministic on replay, never cached.
    let short = QueryBuilder::new()
        .p(4)
        .budget(total - 1)
        .count()
        .build(&snapshot)
        .unwrap();
    for attempt in 0..2 {
        assert_eq!(
            service.execute(&short).unwrap_err(),
            QueryError::BudgetExceeded { budget: total - 1 },
            "attempt {attempt}"
        );
    }
    assert_eq!(
        service.cache_stats().entries,
        entries,
        "failures must not be cached"
    );

    // Budgets meter *visits*, not matches: `exists` stops at the first
    // clique, so a budget of 1 always suffices on a populated graph.
    let exists = QueryBuilder::new()
        .p(4)
        .budget(1)
        .exists()
        .build(&snapshot)
        .unwrap();
    assert_eq!(
        service.execute(&exists).unwrap().outcome,
        QueryOutcome::Exists(true)
    );
    // Likewise first-k visits at most k cliques, so budget(k) suffices...
    let budgeted_first = QueryBuilder::new()
        .p(4)
        .budget(3)
        .first(3)
        .build(&snapshot)
        .unwrap();
    let plain_first = QueryBuilder::new().p(4).first(3).build(&snapshot).unwrap();
    assert_eq!(
        service.execute(&budgeted_first).unwrap().outcome,
        service.execute(&plain_first).unwrap().outcome
    );
    // ...and one less trips the meter.
    let tight = QueryBuilder::new()
        .p(4)
        .budget(2)
        .first(3)
        .build(&snapshot)
        .unwrap();
    assert_eq!(
        service.execute(&tight).unwrap_err(),
        QueryError::BudgetExceeded { budget: 2 }
    );
}

/// Budgeted batches across the full grant matrix: successful payloads are
/// byte-identical, and an exhausted budget surfaces the same typed error —
/// for the first exhausted query in *request* order — at every grant.
#[test]
fn budget_exhaustion_is_identical_across_grants() {
    let snapshot = GraphSnapshot::build(gen::erdos_renyi(45, 0.3, 11)).into_shared();
    let probe = QueryService::new(snapshot.clone());
    let count_query = QueryBuilder::new().p(3).count().build(&snapshot).unwrap();
    let QueryOutcome::Count(total) = probe.execute(&count_query).unwrap().outcome else {
        panic!("count query must yield a count");
    };
    assert!(total >= 2, "workload must have at least two triangles");

    // All-sufficient budgets: byte-identical payloads at every grant and
    // cache temperature, like any other batch.
    let good = vec![
        QueryBuilder::new()
            .p(3)
            .budget(total)
            .count()
            .build(&snapshot)
            .unwrap(),
        QueryBuilder::new()
            .p(3)
            .budget(5)
            .first(5)
            .build(&snapshot)
            .unwrap(),
        QueryBuilder::new()
            .p(3)
            .budget(1)
            .exists()
            .build(&snapshot)
            .unwrap(),
    ];
    let reference = payloads(
        &QueryService::with_parallelism(snapshot.clone(), Parallelism::Off)
            .execute_batch(&good)
            .unwrap(),
    );
    for grant in GRANTS {
        let service = QueryService::with_parallelism(snapshot.clone(), grant);
        let cold = payloads(&service.execute_batch(&good).unwrap());
        assert_eq!(cold, reference, "{grant:?}: cold budgeted batch diverged");
        let warm = payloads(&service.execute_batch(&good).unwrap());
        assert_eq!(warm, reference, "{grant:?}: warm budgeted batch diverged");
    }

    // Two exhausted queries with distinct budgets: every grant reports the
    // earlier one, even though a later worker may finish (and fail) first.
    let mixed = vec![
        QueryBuilder::new().p(3).count().build(&snapshot).unwrap(),
        QueryBuilder::new()
            .p(3)
            .budget(total - 1)
            .count()
            .build(&snapshot)
            .unwrap(),
        QueryBuilder::new()
            .p(3)
            .budget(1)
            .first(2)
            .build(&snapshot)
            .unwrap(),
    ];
    for grant in GRANTS {
        let service = QueryService::with_parallelism(snapshot.clone(), grant);
        assert_eq!(
            service.execute_batch(&mixed).unwrap_err(),
            QueryError::BudgetExceeded { budget: total - 1 },
            "{grant:?}: must report the first exhausted query in request order"
        );
    }
}
