//! Workspace-level integration test: the full `K_p` listing pipeline on small
//! planted workloads, driven through the `Engine` API and cross-checked
//! against `graphcore::cliques` exact enumeration.
//!
//! This test is feature-independent on purpose: CI runs it both with the
//! default (sequential) configuration and with `--features parallel`, so the
//! listing pipeline is exercised under both executors.

use distributed_clique_listing::cliquelist::baselines::simulate_naive_broadcast;
use distributed_clique_listing::cliquelist::Engine;
use distributed_clique_listing::graphcore::{canonical_clique, cliques, gen};
use std::collections::HashSet;

/// Lists `K_p` with the general algorithm on a planted workload and compares
/// the output set against the exact sequential enumeration.
fn check_planted(n: usize, p: usize, num_planted: usize, seed: u64) {
    let (graph, planted) = gen::planted_cliques(n, 0.04, num_planted, p, seed);
    let engine = Engine::builder()
        .p(p)
        .algorithm("general")
        .seed(seed)
        .build()
        .expect("valid engine");
    let (report, listed) = engine.collect(&graph);

    let mut exact: Vec<Vec<u32>> = cliques::list_cliques(&graph, p);
    exact.sort_unstable();
    assert_eq!(
        listed, exact,
        "n={n} p={p} seed={seed}: distributed listing != exact enumeration"
    );
    for c in &planted {
        assert!(
            listed.contains(&canonical_clique(&c.vertices)),
            "n={n} p={p} seed={seed}: planted clique {:?} missing",
            c.vertices
        );
    }
    assert_eq!(report.sink.emitted as usize, exact.len());
}

#[test]
fn planted_k4_workloads_match_exact_enumeration() {
    for seed in [5u64, 23] {
        check_planted(110, 4, 4, seed);
    }
}

#[test]
fn planted_k5_workloads_match_exact_enumeration() {
    for seed in [7u64, 31] {
        check_planted(110, 5, 3, seed);
    }
}

#[test]
fn fast_k4_matches_exact_enumeration_on_planted_workload() {
    let (graph, _) = gen::planted_cliques(100, 0.05, 4, 4, 13);
    let engine = Engine::builder()
        .p(4)
        .algorithm("fast-k4")
        .build()
        .expect("valid engine");
    let (_, listed) = engine.collect(&graph);
    let mut exact: Vec<Vec<u32>> = cliques::list_cliques(&graph, 4);
    exact.sort_unstable();
    assert_eq!(listed, exact);
}

/// The message-level simulation path (which switches executor with the
/// `parallel` feature) must agree with the exact enumeration too.
#[test]
fn simulated_broadcast_matches_exact_enumeration() {
    let (graph, _) = gen::planted_cliques(60, 0.05, 3, 4, 41);
    let (report, result) = simulate_naive_broadcast(&graph, 4, 100_000);
    assert!(report.terminated);
    let listed: HashSet<Vec<u32>> = result.cliques.iter().cloned().collect();
    let exact: HashSet<Vec<u32>> = cliques::list_cliques(&graph, 4).into_iter().collect();
    assert_eq!(listed, exact);
}
