//! Differential property test for the ordered-DAG clique enumerator.
//!
//! The arena-based kClist-style enumerator behind
//! `graphcore::cliques::list_cliques` is compared against a retained naive
//! reference — plain backtracking over increasing vertex ids with per-pair
//! adjacency checks and no degeneracy machinery, no oriented DAG, no bitsets
//! — for p ∈ {3, 4, 5, 6} across Erdős–Rényi, planted-clique and
//! multipartite generators and several seeds. Any divergence in the listed
//! set, the count, or canonical form is a bug in the fast path.

use distributed_clique_listing::graphcore::{cliques, gen, Clique, Graph};

/// The naive reference: enumerate increasing vertex tuples, extending only by
/// vertices adjacent to every chosen one. Exponential-ish but fine at test
/// scale, and structurally independent of the production enumerator.
fn brute_force_cliques(graph: &Graph, p: usize) -> Vec<Clique> {
    fn extend(graph: &Graph, p: usize, start: u32, current: &mut Vec<u32>, out: &mut Vec<Clique>) {
        if current.len() == p {
            out.push(current.clone());
            return;
        }
        for v in start..graph.num_vertices() as u32 {
            if current.iter().all(|&u| graph.has_edge(u, v)) {
                current.push(v);
                extend(graph, p, v + 1, current, out);
                current.pop();
            }
        }
    }
    let mut out = Vec::new();
    extend(graph, p, 0, &mut Vec::with_capacity(p), &mut out);
    out
}

fn assert_matches_reference(label: &str, graph: &Graph, p: usize) {
    let fast = cliques::list_cliques(graph, p);
    let naive = brute_force_cliques(graph, p);
    assert_eq!(
        fast, naive,
        "{label}, p={p}: enumerator diverged from the naive reference"
    );
    assert_eq!(
        cliques::count_cliques(graph, p),
        naive.len(),
        "{label}, p={p}: count diverged from the naive reference"
    );
    for c in &fast {
        assert!(
            c.windows(2).all(|w| w[0] < w[1]),
            "{label}, p={p}: non-canonical clique {c:?}"
        );
    }
}

#[test]
fn enumerator_matches_brute_force_across_generators() {
    for seed in [1u64, 2, 3] {
        for p in [3usize, 4, 5, 6] {
            let workloads: Vec<(String, Graph)> = vec![
                (
                    format!("er(26,0.35,{seed})"),
                    gen::erdos_renyi(26, 0.35, seed),
                ),
                (
                    format!("er(20,0.6,{seed})"),
                    gen::erdos_renyi(20, 0.6, seed),
                ),
                (
                    format!("planted(26,p={p},{seed})"),
                    gen::planted_cliques(26, 0.1, 2, p, seed).0,
                ),
                (
                    format!("multipartite(24,3,0.7,{seed})"),
                    gen::multipartite(24, 3, 0.7, seed),
                ),
            ];
            for (label, graph) in &workloads {
                assert_matches_reference(label, graph, p);
            }
        }
    }
}

#[test]
fn enumerator_matches_brute_force_on_structured_families() {
    // Families with degenerate shapes: complete (every subset), bipartite
    // (nothing beyond edges), star/path (nothing for p >= 3).
    for p in [3usize, 4, 5, 6] {
        assert_matches_reference("complete(11)", &gen::complete_graph(11), p);
        assert_matches_reference("bipartite(9,9)", &gen::complete_bipartite(9, 9), p);
        assert_matches_reference("star(16)", &gen::star_graph(16), p);
        assert_matches_reference("path(16)", &gen::path_graph(16), p);
    }
}

#[test]
fn streaming_prefix_agrees_with_the_full_listing() {
    // The `_while` streaming variant must visit the same cliques in the same
    // order as the unbounded enumeration, truncated at the stop point.
    let graph = gen::erdos_renyi(30, 0.4, 9);
    let mut full = Vec::new();
    cliques::for_each_clique(&graph, 4, |c| full.push(c.to_vec()));
    assert!(full.len() > 5, "workload too sparse for a prefix test");
    for k in [1usize, 5] {
        let mut prefix = Vec::new();
        let completed = cliques::for_each_clique_while(&graph, 4, |c| {
            prefix.push(c.to_vec());
            prefix.len() < k
        });
        assert!(!completed);
        assert_eq!(prefix, full[..k]);
    }
    // A never-declining callback replays the full sequence and completes.
    let mut replay = Vec::new();
    assert!(cliques::for_each_clique_while(&graph, 4, |c| {
        replay.push(c.to_vec());
        true
    }));
    assert_eq!(replay, full);
}
