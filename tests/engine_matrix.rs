//! The algorithm × workload × sink matrix test.
//!
//! For **every** algorithm in the engine registry and a planted and an
//! Erdős–Rényi workload, this asserts the three-way agreement the streaming
//! contract promises:
//!
//! * [`CountSink`] totals equal [`CollectSink`] set sizes (exactly-once
//!   emission — a duplicate or a dropped clique would break the equality);
//! * both equal the exact sequential enumeration count (completeness);
//! * the collected set is exactly the ground truth (soundness);
//! * the emission order is deterministic across runs ([`FirstK`] prefix).

use distributed_clique_listing::cliquelist::{
    algorithms, verify_cliques, CollectSink, CountSink, Engine, FirstK,
};
use distributed_clique_listing::graphcore::{cliques, gen, Graph};

/// The workloads of the matrix: a planted-clique background and denser
/// Erdős–Rényi graphs.
fn workloads(p: usize) -> Vec<(String, Graph)> {
    vec![
        (
            format!("planted(90,{p})"),
            gen::planted_cliques(90, 0.05, 3, p, 7).0,
        ),
        ("er(70,0.3)".to_string(), gen::erdos_renyi(70, 0.3, 11)),
        ("er(50,0.45)".to_string(), gen::erdos_renyi(50, 0.45, 13)),
    ]
}

#[test]
fn count_collect_and_ground_truth_agree_for_every_algorithm() {
    for algorithm in algorithms() {
        let info = algorithm.info();
        for p in [3usize, 4, 5] {
            if !info.supports_p(p) {
                continue;
            }
            let engine = Engine::builder()
                .p(p)
                .algorithm(info.name)
                .seed(5)
                .build()
                .unwrap_or_else(|e| panic!("{} p={p}: {e}", info.name));
            for (label, graph) in workloads(p) {
                let truth = cliques::count_cliques(&graph, p);

                let mut collect = CollectSink::new();
                let collect_report = engine.run(&graph, &mut collect);
                let mut count = CountSink::new();
                let count_report = engine.run(&graph, &mut count);

                assert_eq!(
                    count.count as usize,
                    collect.len(),
                    "{}, p={p}, {label}: CountSink total != CollectSink size",
                    info.name
                );
                assert_eq!(
                    collect.len(),
                    truth,
                    "{}, p={p}, {label}: listed count != exact enumeration",
                    info.name
                );
                assert_eq!(count_report.sink.emitted, count.count);
                assert_eq!(collect_report.sink.emitted as usize, collect.len());
                verify_cliques(&graph, p, &collect.cliques)
                    .unwrap_or_else(|e| panic!("{}, p={p}, {label}: {e}", info.name));
                // The measured cost must not depend on the sink.
                assert_eq!(
                    collect_report.total_rounds(),
                    count_report.total_rounds(),
                    "{}, p={p}, {label}: rounds depend on the sink",
                    info.name
                );
            }
        }
    }
}

#[test]
fn first_k_prefixes_are_deterministic_for_every_algorithm() {
    let graph = gen::erdos_renyi(60, 0.4, 3);
    for algorithm in algorithms() {
        let info = algorithm.info();
        if !info.supports_p(4) {
            continue;
        }
        let engine = Engine::builder()
            .p(4)
            .algorithm(info.name)
            .seed(9)
            .build()
            .expect("valid engine");
        let total = engine.count(&graph).1 as usize;
        let k = 5.min(total);
        let mut first = FirstK::new(k);
        let report = engine.run(&graph, &mut first);
        assert_eq!(first.cliques.len(), k, "{}", info.name);
        assert_eq!(report.sink.emitted as usize, k, "{}", info.name);
        if total > k {
            assert!(report.sink.saturated, "{}", info.name);
        }
        let mut again = FirstK::new(k);
        engine.run(&graph, &mut again);
        assert_eq!(
            first.cliques, again.cliques,
            "{}: emission order is not deterministic",
            info.name
        );
    }
}
