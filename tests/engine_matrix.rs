//! The algorithm × workload × sink matrix test.
//!
//! For **every** algorithm in the engine registry and a planted and an
//! Erdős–Rényi workload, this asserts the three-way agreement the streaming
//! contract promises:
//!
//! * [`CountSink`] totals equal [`CollectSink`] set sizes (exactly-once
//!   emission — a duplicate or a dropped clique would break the equality);
//! * both equal the exact sequential enumeration count (completeness);
//! * the collected set is exactly the ground truth (soundness);
//! * the emission order is deterministic across runs ([`FirstK`] prefix).

use distributed_clique_listing::cliquelist::{
    algorithms, verify_cliques, CliqueSink, CollectSink, CountSink, Engine, FirstK, Parallelism,
};
use distributed_clique_listing::graphcore::{cliques, gen, Clique, Graph};

/// The workloads of the matrix: a planted-clique background and denser
/// Erdős–Rényi graphs.
fn workloads(p: usize) -> Vec<(String, Graph)> {
    vec![
        (
            format!("planted(90,{p})"),
            gen::planted_cliques(90, 0.05, 3, p, 7).0,
        ),
        ("er(70,0.3)".to_string(), gen::erdos_renyi(70, 0.3, 11)),
        ("er(50,0.45)".to_string(), gen::erdos_renyi(50, 0.45, 13)),
    ]
}

#[test]
fn count_collect_and_ground_truth_agree_for_every_algorithm() {
    for algorithm in algorithms() {
        let info = algorithm.info();
        for p in [3usize, 4, 5] {
            if !info.supports_p(p) {
                continue;
            }
            let engine = Engine::builder()
                .p(p)
                .algorithm(info.name)
                .seed(5)
                .build()
                .unwrap_or_else(|e| panic!("{} p={p}: {e}", info.name));
            for (label, graph) in workloads(p) {
                let truth = cliques::count_cliques(&graph, p);

                let mut collect = CollectSink::new();
                let collect_report = engine.run(&graph, &mut collect);
                let mut count = CountSink::new();
                let count_report = engine.run(&graph, &mut count);

                assert_eq!(
                    count.count as usize,
                    collect.len(),
                    "{}, p={p}, {label}: CountSink total != CollectSink size",
                    info.name
                );
                assert_eq!(
                    collect.len(),
                    truth,
                    "{}, p={p}, {label}: listed count != exact enumeration",
                    info.name
                );
                assert_eq!(count_report.sink.emitted, count.count);
                assert_eq!(collect_report.sink.emitted as usize, collect.len());
                verify_cliques(&graph, p, &collect.cliques)
                    .unwrap_or_else(|e| panic!("{}, p={p}, {label}: {e}", info.name));
                // The measured cost must not depend on the sink.
                assert_eq!(
                    collect_report.total_rounds(),
                    count_report.total_rounds(),
                    "{}, p={p}, {label}: rounds depend on the sink",
                    info.name
                );
            }
        }
    }
}

/// Records the exact sink-call sequence of a run (never saturates), so two
/// runs can be compared call for call — the strongest form of the
/// "parallelism never changes output" promise.
#[derive(Default)]
struct TraceSink {
    accepts: Vec<Clique>,
}

impl CliqueSink for TraceSink {
    fn accept(&mut self, clique: &[u32]) {
        self.accepts.push(clique.to_vec());
    }
}

/// Acceptance gate of the sharded-parallelism PR: for **every** registered
/// algorithm × workload, every `Parallelism` setting yields byte-identical
/// output — identical sink-call traces (which subsumes the collected set and
/// the count), identical `FirstK` prefixes, and identical `to_json`
/// artifacts. Algorithms without sharded local enumeration must fall back to
/// sequential rather than diverge. Runs under both feature configurations
/// (without `parallel`, every setting falls back — equality is then the
/// fallback's correctness check).
#[test]
fn parallelism_settings_are_byte_identical_for_every_algorithm() {
    let settings = [
        Parallelism::Threads(1),
        Parallelism::Threads(2),
        Parallelism::Threads(8),
        Parallelism::Auto,
    ];
    for algorithm in algorithms() {
        let info = algorithm.info();
        for p in [3usize, 4] {
            if !info.supports_p(p) {
                continue;
            }
            for (label, graph) in workloads(p).into_iter().take(2) {
                let build = |parallelism: Parallelism| {
                    Engine::builder()
                        .p(p)
                        .algorithm(info.name)
                        .seed(5)
                        .parallelism(parallelism)
                        .build()
                        .unwrap_or_else(|e| panic!("{} p={p}: {e}", info.name))
                };

                let reference_engine = build(Parallelism::Off);
                let mut reference = TraceSink::default();
                let reference_report = reference_engine.run(&graph, &mut reference);
                let reference_json = reference_report.to_json();
                let k = 5.min(reference.accepts.len());
                let mut reference_first = FirstK::new(k);
                reference_engine.run(&graph, &mut reference_first);

                for parallelism in settings {
                    let engine = build(parallelism);
                    let mut trace = TraceSink::default();
                    let report = engine.run(&graph, &mut trace);
                    assert_eq!(
                        trace.accepts, reference.accepts,
                        "{}, p={p}, {label}, {parallelism:?}: sink-call trace \
                         diverged from Parallelism::Off",
                        info.name
                    );
                    assert_eq!(
                        report.to_json(),
                        reference_json,
                        "{}, p={p}, {label}, {parallelism:?}: to_json not byte-identical",
                        info.name
                    );
                    let (_, count) = engine.count(&graph);
                    assert_eq!(
                        count as usize,
                        reference.accepts.len(),
                        "{}, p={p}, {label}, {parallelism:?}: count diverged",
                        info.name
                    );
                    let mut first = FirstK::new(k);
                    engine.run(&graph, &mut first);
                    assert_eq!(
                        first.cliques, reference_first.cliques,
                        "{}, p={p}, {label}, {parallelism:?}: FirstK prefix diverged",
                        info.name
                    );
                }
            }
        }
    }
}

/// [`Engine::collect`] promises the canonical sorted order (each clique's
/// vertices ascending, cliques in lexicographic order) for every algorithm —
/// the order the query service and the JSON artifacts rely on.
#[test]
fn collect_returns_canonical_sorted_order_for_every_algorithm() {
    for algorithm in algorithms() {
        let info = algorithm.info();
        for p in [3usize, 4] {
            if !info.supports_p(p) {
                continue;
            }
            let engine = Engine::builder()
                .p(p)
                .algorithm(info.name)
                .seed(5)
                .build()
                .unwrap_or_else(|e| panic!("{} p={p}: {e}", info.name));
            for (label, graph) in workloads(p).into_iter().take(2) {
                let (_, cliques) = engine.collect(&graph);
                assert!(
                    !cliques.is_empty(),
                    "{}, p={p}, {label}: workload lost its cliques",
                    info.name
                );
                let mut sorted = cliques.clone();
                sorted.sort_unstable();
                assert_eq!(
                    cliques, sorted,
                    "{}, p={p}, {label}: collect output is not canonically sorted",
                    info.name
                );
                for clique in &cliques {
                    assert!(
                        clique.windows(2).all(|w| w[0] < w[1]),
                        "{}, p={p}, {label}: clique {clique:?} not ascending",
                        info.name
                    );
                }
            }
        }
    }
}

#[test]
fn first_k_prefixes_are_deterministic_for_every_algorithm() {
    let graph = gen::erdos_renyi(60, 0.4, 3);
    for algorithm in algorithms() {
        let info = algorithm.info();
        if !info.supports_p(4) {
            continue;
        }
        let engine = Engine::builder()
            .p(4)
            .algorithm(info.name)
            .seed(9)
            .build()
            .expect("valid engine");
        let total = engine.count(&graph).1 as usize;
        let k = 5.min(total);
        let mut first = FirstK::new(k);
        let report = engine.run(&graph, &mut first);
        assert_eq!(first.cliques.len(), k, "{}", info.name);
        assert_eq!(report.sink.emitted as usize, k, "{}", info.name);
        if total > k {
            assert!(report.sink.saturated, "{}", info.name);
        }
        let mut again = FirstK::new(k);
        engine.run(&graph, &mut again);
        assert_eq!(
            first.cliques, again.cliques,
            "{}: emission order is not deterministic",
            info.name
        );
    }
}
