//! The fault differential battery: the determinism contract extended to
//! injected faults.
//!
//! Three families of guarantees are pinned here:
//!
//! * **Fault-free equivalence** — an engine carrying the default (inert)
//!   [`Resilience`] envelope produces reports, listings and outcomes
//!   byte-identical to an engine with no envelope at all, for every
//!   registered algorithm.
//! * **Loss masking** — under seeded drop plans the reliable transport
//!   reproduces the fault-free listing exactly (message-level and
//!   engine-level), with the retransmission overhead recorded explicitly.
//! * **Graceful degradation** — crash-stop schedules and round budgets yield
//!   deterministic `Degraded`/`Aborted` outcomes and partial listings
//!   instead of panics or hangs; replaying the same `(seed, plan)` pair is
//!   byte-identical, at any thread grant.

#[cfg(feature = "parallel")]
use distributed_clique_listing::cliquelist::Parallelism;
use distributed_clique_listing::cliquelist::{
    algorithms, baselines, Engine, Resilience, RunOutcome,
};
use distributed_clique_listing::congest::{
    FaultPlan, MemorySink, Network, NetworkConfig, Topology, TraceEvent,
};
use distributed_clique_listing::graphcore::{gen, Clique, Graph};
use std::sync::Arc;

fn engine(p: usize, name: &str, resilience: Option<Resilience>) -> Engine {
    let mut builder = Engine::builder().p(p).algorithm(name).seed(7);
    if let Some(resilience) = resilience {
        builder = builder.resilience(resilience);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("{name} p={p}: {e}"))
}

#[test]
fn fault_free_envelope_is_byte_identical_for_every_algorithm() {
    let graph = gen::erdos_renyi(60, 0.3, 7);
    for algorithm in algorithms() {
        let info = algorithm.info();
        for p in [3usize, 4] {
            if !info.supports_p(p) {
                continue;
            }
            let bare = engine(p, info.name, None);
            let envel = engine(p, info.name, Some(Resilience::fault_free()));
            let (bare_report, bare_cliques) = bare.collect(&graph);
            let (env_report, env_cliques) = envel.collect(&graph);
            assert_eq!(
                bare_report.to_json(),
                env_report.to_json(),
                "{} p={p}: inert envelope changed the report",
                info.name
            );
            assert_eq!(bare_cliques, env_cliques, "{} p={p}", info.name);
            assert_eq!(env_report.outcome, RunOutcome::Complete);
            assert!(!env_report.to_json().contains("\"outcome\""));
        }
    }
}

#[test]
fn lossy_plans_with_reliable_transport_keep_the_listing_and_charge_retransmit() {
    let graph = gen::erdos_renyi(60, 0.3, 7);
    let (reference_report, reference_cliques) = engine(4, "general", None).collect(&graph);
    for drop_ppm in [10_000u64, 50_000] {
        let plan = FaultPlan::builder(0xFA17)
            .drop_probability(drop_ppm as f64 / 1_000_000.0)
            .build()
            .unwrap();
        let lossy = engine(4, "general", Some(Resilience::with_plan(plan)));
        let (report, cliques) = lossy.collect(&graph);
        assert_eq!(
            cliques, reference_cliques,
            "drop {drop_ppm}ppm: the reliable transport must mask the loss"
        );
        assert_eq!(report.outcome, RunOutcome::Complete);
        assert!(
            report.to_json().contains("\"retransmit\":"),
            "drop {drop_ppm}ppm: overhead must be recorded as a phase"
        );
        assert!(
            report.total_rounds() > reference_report.total_rounds(),
            "drop {drop_ppm}ppm: recovery costs extra rounds"
        );
        // Replay: the same (seed, plan) is byte-identical.
        let (again, again_cliques) = lossy.collect(&graph);
        assert_eq!(again.to_json(), report.to_json());
        assert_eq!(again_cliques, cliques);
    }
}

#[test]
fn loss_without_reliable_transport_degrades() {
    let graph = gen::erdos_renyi(50, 0.3, 5);
    let plan = FaultPlan::builder(3)
        .drop_probability(0.05)
        .build()
        .unwrap();
    let resilience = Resilience {
        reliable_transport: false,
        ..Resilience::with_plan(plan)
    };
    let (report, _) = engine(4, "general", Some(resilience)).collect(&graph);
    let RunOutcome::Degraded(reason) = &report.outcome else {
        panic!("expected Degraded, got {:?}", report.outcome);
    };
    assert!(reason.contains("without reliable transport"), "{reason}");
    assert!(report.to_json().contains("\"status\":\"degraded\""));
    // Fully lossy links cannot be masked even by the reliable transport.
    let dead = FaultPlan::builder(3).drop_probability(1.0).build().unwrap();
    let (report, _) = engine(4, "general", Some(Resilience::with_plan(dead))).collect(&graph);
    assert!(matches!(&report.outcome, RunOutcome::Degraded(r) if r.contains("fully lossy")));
}

#[test]
fn crash_plans_yield_a_deterministic_partial_listing() {
    let graph = gen::erdos_renyi(50, 0.3, 5);
    let (_, full) = engine(4, "general", None).collect(&graph);
    let crashed = [0u32, 3];
    let mut plan = FaultPlan::builder(11);
    for &node in &crashed {
        plan = plan.crash(node as usize, 1);
    }
    let resilience = Resilience::with_plan(plan.build().unwrap());
    let eng = engine(4, "general", Some(resilience));
    let (report, partial) = eng.collect(&graph);

    // The partial listing is exactly the fault-free one minus the cliques
    // owned (canonical minimum vertex) by a crashed node.
    let expected: Vec<Clique> = full
        .iter()
        .filter(|c| !crashed.contains(&c[0]))
        .cloned()
        .collect();
    assert!(
        expected.len() < full.len(),
        "weak workload: no clique owned by a crashed node"
    );
    assert_eq!(partial, expected);
    let RunOutcome::Degraded(reason) = &report.outcome else {
        panic!("expected Degraded, got {:?}", report.outcome);
    };
    assert!(reason.contains("2 node(s) crash-stopped"), "{reason}");

    // Byte-identical replay.
    let (again, again_cliques) = eng.collect(&graph);
    assert_eq!(again.to_json(), report.to_json());
    assert_eq!(again_cliques, partial);

    // And byte-identical across thread grants (sharded enumeration).
    #[cfg(feature = "parallel")]
    for threads in [1usize, 2, 8] {
        let granted = Engine::builder()
            .p(4)
            .algorithm("general")
            .seed(7)
            .parallelism(Parallelism::Threads(threads))
            .resilience(eng.resilience().clone())
            .build()
            .unwrap();
        let (grant_report, grant_cliques) = granted.collect(&graph);
        assert_eq!(grant_cliques, partial, "{threads} threads");
        assert_eq!(grant_report.outcome, report.outcome, "{threads} threads");
    }
}

#[test]
fn crashing_every_node_aborts_instead_of_panicking() {
    let graph = gen::erdos_renyi(8, 0.5, 2);
    let mut plan = FaultPlan::builder(1);
    for node in 0..8 {
        plan = plan.crash(node, 1);
    }
    let resilience = Resilience::with_plan(plan.build().unwrap());
    let (report, cliques) = engine(3, "general", Some(resilience)).collect(&graph);
    assert_eq!(report.outcome, RunOutcome::Aborted);
    assert!(cliques.is_empty());
    assert_eq!(report.sink.emitted, 0);
    assert!(report
        .to_json()
        .ends_with(",\"outcome\":{\"status\":\"aborted\"}}"));
}

#[test]
fn round_budgets_degrade_or_abort_deterministically() {
    // A run that emits output but blows the budget is Degraded...
    let graph = gen::erdos_renyi(50, 0.3, 5);
    let tight = Resilience {
        max_rounds: Some(1),
        ..Resilience::default()
    };
    let (report, cliques) = engine(4, "general", Some(tight.clone())).collect(&graph);
    assert!(!cliques.is_empty(), "weak workload: nothing listed");
    let RunOutcome::Degraded(reason) = &report.outcome else {
        panic!("expected Degraded, got {:?}", report.outcome);
    };
    assert!(reason.contains("round budget exhausted"), "{reason}");
    assert!(report.total_rounds() > 1);

    // ...while a run that emits nothing at all is Aborted.
    let barren = gen::erdos_renyi(40, 0.05, 3);
    let (report, cliques) = engine(5, "general", Some(tight)).collect(&barren);
    assert!(cliques.is_empty(), "weak workload: K_5s exist after all");
    assert_eq!(report.outcome, RunOutcome::Aborted);

    // A generous budget leaves the run Complete and the report untouched.
    let roomy = Resilience {
        max_rounds: Some(u64::MAX),
        ..Resilience::default()
    };
    let (bare, bare_cliques) = engine(4, "general", None).collect(&graph);
    let (capped, capped_cliques) = engine(4, "general", Some(roomy)).collect(&graph);
    assert_eq!(capped.to_json(), bare.to_json());
    assert_eq!(capped_cliques, bare_cliques);
}

#[test]
fn message_level_loss_is_masked_at_every_drop_rate() {
    let graph = gen::erdos_renyi(20, 0.4, 13);
    let reference =
        baselines::simulate_naive_broadcast_with_faults(&graph, 3, 20_000, FaultPlan::fault_free());
    assert!(reference.report.terminated);
    assert!(!reference.result.cliques.is_empty(), "weak workload");
    for drop_ppm in [0u64, 10_000, 50_000] {
        let plan = FaultPlan::builder(0xD0_0D)
            .drop_probability(drop_ppm as f64 / 1_000_000.0)
            .build()
            .unwrap();
        let run = baselines::simulate_naive_broadcast_with_faults(&graph, 3, 20_000, plan.clone());
        assert!(run.report.terminated, "drop {drop_ppm}ppm: did not quiesce");
        assert_eq!(
            run.result.cliques, reference.result.cliques,
            "drop {drop_ppm}ppm: listing diverged"
        );
        if drop_ppm == 0 {
            assert_eq!(run.transport.retransmits, 0);
            assert_eq!(run.dropped_messages, 0);
        } else {
            assert!(run.dropped_messages > 0, "drop {drop_ppm}ppm: plan inert");
            assert!(run.transport.retransmits > 0);
            assert!(run.report.simulated_rounds >= reference.report.simulated_rounds);
        }
        // Replay determinism of the full simulation.
        let again = baselines::simulate_naive_broadcast_with_faults(&graph, 3, 20_000, plan);
        assert_eq!(again.transport, run.transport);
        assert_eq!(again.report.simulated_rounds, run.report.simulated_rounds);
        assert_eq!(again.result.cliques, run.result.cliques);
    }
}

/// Builds the CONGEST topology of a small lossy workload and returns the
/// trace events of one execution.
fn faulty_trace(graph: &Graph, plan: &FaultPlan, threads: Option<usize>) -> Vec<TraceEvent> {
    let topology = Topology::from_edge_list(graph.num_vertices(), graph.edges());
    let mut net = Network::new(topology, NetworkConfig::default(), |_| {
        baselines::ReliableNaiveBroadcastProgram::new(3)
    });
    net.set_fault_plan(plan.clone()).unwrap();
    let sink = Arc::new(MemorySink::new());
    net.set_trace_sink(sink.clone());
    let report = match threads {
        None => net.run(20_000),
        #[cfg(feature = "parallel")]
        Some(t) => net.run_parallel_with_threads(t, 20_000),
        #[cfg(not(feature = "parallel"))]
        Some(_) => unreachable!("thread grants need the parallel feature"),
    };
    assert!(report.terminated);
    sink.events()
}

#[test]
fn fault_event_sequences_replay_identically() {
    let graph = gen::erdos_renyi(30, 0.25, 17);
    let plan = FaultPlan::builder(0x5EED)
        .drop_probability(0.1)
        .crash(2, 5)
        .build()
        .unwrap();
    let reference = faulty_trace(&graph, &plan, None);
    assert!(
        reference
            .iter()
            .any(|e| matches!(e, TraceEvent::Dropped { .. })),
        "weak plan: nothing dropped"
    );
    assert!(
        reference
            .iter()
            .any(|e| matches!(e, TraceEvent::NodeCrashed { .. })),
        "weak plan: nobody crashed"
    );
    // Repeated runs replay the exact event sequence...
    assert_eq!(faulty_trace(&graph, &plan, None), reference);
    // ...and so does the parallel executor at every thread grant.
    #[cfg(feature = "parallel")]
    for threads in [1usize, 2, 8] {
        assert_eq!(
            faulty_trace(&graph, &plan, Some(threads)),
            reference,
            "trace diverged with {threads} threads"
        );
    }
}
