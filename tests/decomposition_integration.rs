//! Integration tests for the expander-decomposition substrate: the guarantees
//! of Definition 2.2 must hold on every workload family the experiments use.

use distributed_clique_listing::congest::{ChargePolicy, CostLedger};
use distributed_clique_listing::expander::{
    decompose, ClusterIds, ClusterRouter, DecompositionConfig,
};
use distributed_clique_listing::graphcore::{gen, orientation, Graph};

fn families() -> Vec<(String, Graph)> {
    vec![
        ("er_sparse".into(), gen::erdos_renyi(250, 0.03, 1)),
        ("er_dense".into(), gen::erdos_renyi(250, 0.3, 1)),
        ("tripartite".into(), gen::multipartite(200, 3, 0.7, 1)),
        ("barabasi_albert".into(), gen::barabasi_albert(250, 5, 1)),
        ("rmat".into(), gen::rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 1)),
        ("star".into(), gen::star_graph(200)),
        ("complete".into(), gen::complete_graph(60)),
    ]
}

#[test]
fn definition_2_2_holds_on_every_family() {
    let config = DecompositionConfig::default();
    for (label, graph) in families() {
        for &delta in &[0.4, 0.55, 0.7] {
            let d = decompose(&graph, delta, &config, 3);
            d.verify(&graph)
                .unwrap_or_else(|v| panic!("{label} (δ = {delta}): {v:?}"));
            assert!(
                d.er.len() * 6 <= graph.num_edges().max(1),
                "{label}: |E_r| too large"
            );
        }
    }
}

#[test]
fn es_arboricity_bound_is_respected() {
    // The E_s part must have arboricity at most n^δ; its degeneracy (an upper
    // bound on arboricity up to a factor 2) must respect the orientation
    // bound that Definition 2.2 requires.
    let graph = gen::erdos_renyi(300, 0.2, 9);
    let delta = 0.5;
    let d = decompose(&graph, delta, &DecompositionConfig::default(), 1);
    let es_graph = Graph::from_edge_set(300, &d.es).unwrap();
    let limit = (300f64).powf(delta).ceil() as usize;
    assert!(orientation::arboricity_upper_bound(&es_graph) <= 2 * limit);
    assert!(d.es_orientation.max_out_degree() <= limit);
}

#[test]
fn cluster_ids_and_router_work_on_real_clusters() {
    let graph = gen::erdos_renyi(200, 0.35, 5);
    let d = decompose(&graph, 0.5, &DecompositionConfig::default(), 1);
    assert!(
        !d.clusters.is_empty(),
        "dense ER graph must produce clusters"
    );
    let em_graph = d.em_graph(200);
    for cluster in &d.clusters {
        let ids = ClusterIds::assign(cluster);
        assert_eq!(ids.len(), cluster.len());
        let router = ClusterRouter::new(cluster, &em_graph, 200, ChargePolicy::bare());
        assert!(router.bandwidth() as usize >= d.degree_threshold);
        // Route a token from every node to the rank-0 node and make sure the
        // loads and charges are consistent.
        let target = ids.vertex(0);
        let messages: Vec<(u32, u32, u32)> =
            cluster.vertices.iter().map(|&v| (v, target, v)).collect();
        let mut ledger = CostLedger::new();
        let (delivered, outcome) = router.route(messages, 1, &mut ledger);
        assert_eq!(outcome.messages as usize, cluster.len());
        assert_eq!(outcome.max_recv as usize, cluster.len());
        // Deliveries are indexed by dense rank; the rank-0 node got them all.
        assert_eq!(ids.rank(target), Some(0));
        assert_eq!(delivered[0].len(), cluster.len());
        assert!(delivered[1..].iter().all(Vec::is_empty));
        assert_eq!(ledger.total(), outcome.rounds);
    }
}

#[test]
fn decomposition_is_deterministic_for_a_fixed_seed() {
    let graph = gen::erdos_renyi(150, 0.2, 11);
    let config = DecompositionConfig::default();
    let a = decompose(&graph, 0.5, &config, 7);
    let b = decompose(&graph, 0.5, &config, 7);
    assert_eq!(a.em, b.em);
    assert_eq!(a.es, b.es);
    assert_eq!(a.er, b.er);
    assert_eq!(a.clusters.len(), b.clusters.len());
}

#[test]
fn charged_rounds_decrease_with_delta() {
    let graph = gen::erdos_renyi(150, 0.2, 11);
    let config = DecompositionConfig::default();
    let policy = ChargePolicy::bare();
    let shallow = decompose(&graph, 0.3, &config, 1).charged_rounds(10_000, &policy);
    let deep = decompose(&graph, 0.8, &config, 1).charged_rounds(10_000, &policy);
    assert!(shallow > deep, "Theorem 2.3 cost must fall as δ grows");
}
