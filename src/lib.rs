//! Umbrella crate of the *On Distributed Listing of Cliques* reproduction.
//!
//! Re-exports the five member crates so that examples, integration tests and
//! downstream users can depend on a single package:
//!
//! * [`congest`] — synchronous CONGEST / CONGESTED CLIQUE simulator;
//! * [`graphcore`] — graph substrate, workload generators, exact enumeration;
//! * [`expander`] — expander decomposition, cluster routing, ID assignment;
//! * [`cliquelist`] — the paper's listing algorithms and baselines;
//! * [`query`] — concurrent clique queries over immutable graph snapshots.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` for the
//! architecture and the reproduction methodology.

#![forbid(unsafe_code)]

pub use cliquelist;
pub use congest;
pub use expander;
pub use graphcore;
pub use query;
