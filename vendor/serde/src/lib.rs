//! In-tree, dependency-free stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this placeholder: [`Serialize`] and [`Deserialize`] are marker traits and
//! the derive macros (from the sibling `serde_derive` shim) emit empty
//! implementations. This keeps the `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace compiling and records serialization
//! intent, without providing an actual data format.
//!
//! When a real serialization backend becomes available, replacing the two
//! `vendor/serde*` path dependencies with the crates.io releases restores
//! full functionality without touching any annotated type.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose serialized form is derivable.
///
/// The in-tree stand-in carries no methods; see the crate-level docs.
pub trait Serialize {}

/// Marker for types whose deserialized form is derivable.
///
/// The in-tree stand-in carries no methods; see the crate-level docs.
pub trait Deserialize<'de>: Sized {}
