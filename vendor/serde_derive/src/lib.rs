//! No-op `Serialize` / `Deserialize` derive macros for the in-tree `serde`
//! stand-in (see `vendor/serde`).
//!
//! Each derive parses just enough of the item — the `struct` / `enum` keyword
//! followed by the type name — to emit an empty marker-trait implementation.
//! Generic type parameters are intentionally unsupported: every annotated type
//! in this workspace is concrete, and a compile error on the emitted `impl` is
//! the desired failure mode if that ever changes.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct` or `enum` the derive is attached to.
fn item_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
                panic!("derive target has no name after `{word}`");
            }
        }
    }
    panic!("derive target is neither a struct nor an enum");
}

/// Derives the marker `serde::Serialize` implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the marker `serde::Deserialize` implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
