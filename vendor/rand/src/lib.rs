//! In-tree, dependency-free stand-in for the parts of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a deterministic subset of `rand`: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, a [`rngs::SmallRng`] backed by xoshiro256++, and
//! [`seq::SliceRandom`] (Fisher–Yates shuffling and uniform choice).
//!
//! The streams produced by this implementation are *not* bit-compatible with
//! upstream `rand`; every consumer in this workspace only relies on the
//! streams being deterministic for a fixed seed, which this crate guarantees.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Error type produced by fallible generator methods.
///
/// The in-tree generators are infallible, so this error is never constructed
/// by this crate; it exists so that `RngCore::try_fill_bytes` has the same
/// shape as upstream.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`]; never fails here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience constructor from a `u64`, expanded with SplitMix64 exactly
    /// like upstream `rand` expands small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's raw bit stream,
/// mirroring `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply rejection for unbiased draws.
                let mut x = rng.next_u64() as u128;
                let mut m = x.wrapping_mul(span);
                let mut lo = m as u64 as u128;
                if lo < span {
                    let threshold = (u64::MAX as u128 + 1 - span) % span;
                    while lo < threshold {
                        x = rng.next_u64() as u128;
                        m = x.wrapping_mul(span);
                        lo = m as u64 as u128;
                    }
                }
                // Add the offset in the unsigned domain: for signed types the
                // offset can exceed the type's positive half, so a direct
                // `start + offset` would overflow even though the result is
                // in range. Wrapping arithmetic mod 2^128 followed by the
                // truncating cast yields the exact in-range value.
                (self.start as u128).wrapping_add(m >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Like upstream's `SmallRng`, it is not cryptographically secure and its
    /// stream is not portable across `rand` implementations.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly chooses one element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_handles_full_width_signed_ranges() {
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..1000 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(5..6u64);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(13);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u32].choose(&mut rng), Some(&7));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
