//! In-tree, dependency-free stand-in for the parts of the `criterion` bench
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal wall-clock harness with the same surface as `criterion` 0.5:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].
//!
//! Semantics: each benchmark is warmed up for `warm_up_time`, then timed for
//! `sample_size` samples whose batch size is calibrated so one sample lasts
//! roughly `measurement_time / sample_size`. Mean, minimum and maximum
//! per-iteration times are printed to stdout. There is no statistical
//! analysis, no plotting and no baseline comparison — the goal is that
//! `cargo bench` runs, produces stable human-readable numbers and keeps the
//! bench targets compiling.
//!
//! When running under `cargo test` (Cargo passes `--test` to bench binaries
//! built with `harness = false`), benchmarks execute a single iteration each,
//! acting as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque re-export of [`std::hint::black_box`], matching `criterion`'s name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered into the label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` once per configured iteration and records the total
    /// wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness state.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test`, bench binaries with `harness = false` receive
        // `--test`; run each benchmark once so the suite stays fast.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted, ignored by the shim).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            smoke_only: self.smoke_only,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    smoke_only: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut routine: R) {
        self.run(&id.to_string(), &mut |b| routine(b));
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) {
        self.run(&id.to_string(), &mut |b| routine(b, input));
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if self.smoke_only {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("bench {full}: ok (smoke)");
            return;
        }

        // Warm-up, which doubles as calibration of the per-sample batch size.
        let mut calibration_iters = 0u64;
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            calibration_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / calibration_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter).round() as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut best = f64::INFINITY;
        let mut worst = 0.0f64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: batch,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            total += b.elapsed;
            iters += batch;
            let sample = b.elapsed.as_secs_f64() / batch as f64;
            best = best.min(sample);
            worst = worst.max(sample);
        }
        let mean = total.as_secs_f64() / iters as f64;
        println!(
            "bench {full}: mean {} (min {}, max {}, {} samples x {} iters)",
            format_seconds(mean),
            format_seconds(best),
            format_seconds(worst),
            self.sample_size,
            batch,
        );
    }
}

fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark entry point calling each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut criterion = Criterion { smoke_only: true };
        let mut group = criterion.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }
}
